"""Workload scenarios: deterministic corpora, patterns, and mutations.

A scenario is everything a driver needs to issue realistic requests:

* a **site-clustered data corpus** — ``sites`` weakly connected
  components of chain + shortcut edges with site-prefixed labels
  (``"s3:L1"``), the same shape as the CI streaming smokes, so the one
  corpus exercises the flat service, shard routing (components map to
  shards), and the delta-evolution path;
* a **pattern library** of small chain-segment subgraphs with a
  **Zipf popularity** law over them (rank-``s`` weights via an inverse
  CDF + bisect — a handful of hot patterns dominate, the realistic
  skew that makes the prepared cache and gated prefilter earn their
  keep);
* a **mutation pool** of removable intra-site shortcut edges: a mutate
  step removes a pooled edge or re-adds a previously removed one, so a
  long run oscillates instead of draining the graph, and every
  mutation is a legal :class:`~repro.graph.digraph.DiGraph` mutator
  call (the delta log sees it, ``update_graph`` evolves instead of
  re-preparing).

Everything is a pure function of ``(spec, seed)``: a worker process
rebuilds its scenario from those two values and gets a corpus whose
fingerprint matches the parent's warm store exactly.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.core.prefilter import LabelEqualitySimilarity
from repro.graph.digraph import DiGraph
from repro.utils.errors import InputError

__all__ = ["ScenarioSpec", "Scenario"]


@dataclass(frozen=True)
class ScenarioSpec:
    """Shape parameters of a generated workload (picklable, hashable)."""

    sites: int = 4
    site_size: int = 30
    label_kinds: int = 5
    patterns_per_site: int = 2
    pattern_size: int = 5
    zipf_exponent: float = 1.1
    xi: float = 0.5

    def __post_init__(self) -> None:
        if self.sites < 1:
            raise InputError(f"a scenario needs at least one site, got {self.sites!r}")
        if self.site_size < self.pattern_size + 1:
            raise InputError(
                f"site_size {self.site_size} cannot host pattern_size {self.pattern_size}"
            )
        if self.pattern_size < 2:
            raise InputError(f"patterns need at least two nodes, got {self.pattern_size!r}")
        if self.label_kinds < 1 or self.patterns_per_site < 1:
            raise InputError("label_kinds and patterns_per_site must be positive")
        if not 0 < self.xi <= 1.0:
            raise InputError(f"xi must be in (0, 1], got {self.xi!r}")
        if self.zipf_exponent <= 0:
            raise InputError(f"zipf_exponent must be positive, got {self.zipf_exponent!r}")


class Scenario:
    """A concrete workload: corpus + patterns + popularity + mutations.

    The construction RNG is consumed entirely inside ``__init__`` —
    request-time sampling uses the *caller's* RNG, so two drivers with
    different per-worker seeds draw different request streams over the
    byte-identical corpus.
    """

    def __init__(self, spec: ScenarioSpec | None = None, seed: int = 0) -> None:
        self.spec = spec if spec is not None else ScenarioSpec()
        self.seed = int(seed)
        rng = random.Random(self.seed)
        spec = self.spec

        corpus = DiGraph(name=f"workload-corpus-{self.seed}")
        #: Removable intra-site shortcut edges, per the mutation pool.
        shortcuts: list[tuple[int, int]] = []
        for site in range(spec.sites):
            base = site * spec.site_size
            for i in range(spec.site_size):
                corpus.add_node(
                    base + i, label=f"s{site}:L{rng.randrange(spec.label_kinds)}"
                )
            # The chain spine keeps the site one weakly connected
            # component no matter which shortcuts mutations remove.
            for i in range(spec.site_size - 1):
                corpus.add_edge(base + i, base + i + 1)
            for i in range(0, spec.site_size - 4, 5):
                corpus.add_edge(base + i, base + i + 3)
                shortcuts.append((base + i, base + i + 3))
        self.corpus = corpus
        self.similarity = LabelEqualitySimilarity()
        self.xi = spec.xi

        # Pattern library: chain segments (with any induced shortcuts),
        # cut *before* mutations so patterns stay stable for the run.
        patterns: list[DiGraph] = []
        for site in range(spec.sites):
            base = site * spec.site_size
            for k in range(spec.patterns_per_site):
                start = rng.randrange(spec.site_size - spec.pattern_size)
                nodes = [base + start + i for i in range(spec.pattern_size)]
                patterns.append(corpus.subgraph(nodes, name=f"s{site}q{k}"))
        self.patterns = patterns

        # Zipf popularity: weight 1/rank^s over a shuffled rank order,
        # collapsed to a CDF for O(log n) inverse sampling.
        order = list(range(len(patterns)))
        rng.shuffle(order)
        weights = [1.0 / (rank + 1) ** spec.zipf_exponent for rank in range(len(order))]
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._order = order
        self._cdf = cdf

        # Mutation pool state: edges currently present / removed.
        self._present: list[tuple[int, int]] = list(shortcuts)
        self._removed: list[tuple[int, int]] = []

    # -- request-time sampling (caller's RNG) ---------------------------
    def sample_pattern(self, rng: random.Random) -> DiGraph:
        """Draw one pattern by Zipf popularity."""
        index = bisect.bisect_left(self._cdf, rng.random())
        return self.patterns[self._order[min(index, len(self._order) - 1)]]

    def mutate(self, rng: random.Random) -> tuple[str, int, int]:
        """Apply one random mutation to the corpus; returns ``(op, tail, head)``.

        Removes a pooled shortcut or re-adds a removed one (biased
        toward whichever side has more entries, so the corpus hovers
        near its initial density).  Every call goes through the DiGraph
        mutators, so attached delta logs record it and the serving
        layer's ``update_graph`` can evolve incrementally.
        """
        remove = bool(self._present) and (
            not self._removed or rng.random() < len(self._present) / len(self._present + self._removed)
        )
        if remove:
            edge = self._present.pop(rng.randrange(len(self._present)))
            self.corpus.remove_edge(*edge)
            self._removed.append(edge)
            return ("remove_edge", *edge)
        edge = self._removed.pop(rng.randrange(len(self._removed)))
        self.corpus.add_edge(*edge)
        self._present.append(edge)
        return ("add_edge", *edge)

    @property
    def mutation_pool_size(self) -> int:
        return len(self._present) + len(self._removed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Scenario sites={self.spec.sites} patterns={len(self.patterns)} "
            f"seed={self.seed}>"
        )
