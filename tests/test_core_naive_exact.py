"""Tests for the naive product-graph algorithms and the exact solvers."""

import pytest

from repro.core.comp_max_card import comp_max_card
from repro.core.exact import exact_comp_max_card, exact_comp_max_sim
from repro.core.naive import (
    naive_comp_max_card,
    naive_comp_max_card_injective,
    naive_comp_max_sim,
    naive_comp_max_sim_injective,
)
from repro.core.phom import check_phom_mapping
from repro.graph.digraph import DiGraph
from repro.similarity.labels import label_equality_matrix
from repro.utils.errors import TimeBudgetExceeded

from helpers import make_random_instance


class TestNaive:
    @pytest.mark.parametrize("seed", range(15))
    def test_naive_card_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = naive_comp_max_card(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5) == []
        assert result.stats["product_nodes"] >= len(result.mapping)

    @pytest.mark.parametrize("seed", range(15))
    def test_naive_card_injective_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = naive_comp_max_card_injective(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5, injective=True) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_naive_sim_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = naive_comp_max_sim(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_naive_sim_injective_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = naive_comp_max_sim_injective(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5, injective=True) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_naive_bounded_by_exact(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=4, n2=5)
        naive = naive_comp_max_card(g1, g2, mat, 0.5)
        exact = exact_comp_max_card(g1, g2, mat, 0.5)
        assert naive.qual_card <= exact.qual_card + 1e-9

    def test_naive_on_fig2(self, fig2_pairs):
        g1, g2 = fig2_pairs["g1"], fig2_pairs["g2"]
        mat = label_equality_matrix(g1, g2)
        assert naive_comp_max_card(g1, g2, mat, 0.5).qual_card == 1.0

    def test_naive_empty(self):
        from repro.similarity.matrix import SimilarityMatrix

        result = naive_comp_max_card(DiGraph(), DiGraph(), SimilarityMatrix(), 0.5)
        assert result.mapping == {}
        assert result.qual_card == 1.0


class TestExact:
    def test_exact_finds_total_mapping_fig1(self, fig1_pattern, fig1_data, fig1_mat):
        result = exact_comp_max_card(fig1_pattern, fig1_data, fig1_mat, 0.6)
        assert result.qual_card == 1.0
        assert check_phom_mapping(fig1_pattern, fig1_data, result.mapping, fig1_mat, 0.6) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_exact_dominates_both_approximations(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=4, n2=5)
        exact = exact_comp_max_card(g1, g2, mat, 0.5)
        for approx in (
            comp_max_card(g1, g2, mat, 0.5),
            naive_comp_max_card(g1, g2, mat, 0.5),
        ):
            assert approx.qual_card <= exact.qual_card + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_sim_dominates_card_on_sim_metric(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=4, n2=4)
        best_sim = exact_comp_max_sim(g1, g2, mat, 0.5)
        best_card = exact_comp_max_card(g1, g2, mat, 0.5)
        assert best_sim.qual_sim >= best_card.qual_sim - 1e-9

    def test_exact_respects_budget(self):
        g1, g2, mat = make_random_instance(0, n1=8, n2=10, sim_density=0.9)
        with pytest.raises(TimeBudgetExceeded):
            exact_comp_max_card(g1, g2, mat, 0.3, budget_seconds=1e-9)

    def test_exact_marks_optimal_stat(self):
        g1, g2, mat = make_random_instance(1, n1=3, n2=3)
        result = exact_comp_max_card(g1, g2, mat, 0.5)
        assert result.stats["optimal"] is True
