"""AsyncMatchingService: concurrency equivalence and lifecycle.

The async front-end must be a *transparent* adapter: a gather of N
requests returns exactly what N sequential service calls return, the
semaphore really bounds in-flight solves, and the wrapped service's
statistics stay consistent under async fan-out (they are taken as one
lock-held snapshot since the sharding refactor).
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.core.aio import AsyncMatchingService
from repro.core.service import MatchingService
from repro.core.sharding import ShardedMatchingService
from repro.graph.digraph import DiGraph
from repro.similarity.labels import label_equality_matrix
from repro.utils.errors import InputError

XI = 0.5


def build_workload(sites: int = 2, site_nodes: int = 30, patterns: int = 10):
    rng = random.Random(17)
    data = DiGraph(name="async-data")
    for s in range(sites):
        base = s * site_nodes
        for i in range(site_nodes):
            data.add_node(base + i, label=f"L{rng.randrange(6)}")
        for _ in range(3 * site_nodes):
            a = base + rng.randrange(site_nodes)
            b = base + rng.randrange(site_nodes)
            if a != b:
                data.add_edge(a, b)
        for i in range(site_nodes - 1):
            data.add_edge(base + i, base + i + 1)
    nodes = list(data.nodes())
    pats = [
        data.subgraph(rng.sample(nodes, 7), name=f"p{i}") for i in range(patterns)
    ]
    mats = {p.name: label_equality_matrix(p, data) for p in pats}
    source = lambda pattern, _data: mats[pattern.name]
    return data, pats, source


class TestConcurrencyEquivalence:
    def test_match_many_equals_sequential(self):
        data, patterns, source = build_workload()
        reference = MatchingService().match_many(patterns, data, source, XI)

        async def run():
            async with AsyncMatchingService(max_concurrency=4) as service:
                reports = await service.match_many(patterns, data, source, XI)
                return reports, service.service.stats.snapshot()

        reports, snapshot = asyncio.run(run())
        assert [r.result.mapping for r in reports] == [
            r.result.mapping for r in reference
        ]
        assert [r.quality for r in reports] == [r.quality for r in reference]
        # One consistent stats cut: every async solve accounted, one
        # prepare despite the cold stampede (in-flight dedupe).
        assert snapshot["calls"] == len(patterns)
        assert snapshot["calls"] == sum(snapshot["solved_by"].values())
        assert snapshot["prepares"] == 1

    def test_single_match_and_options_flow_through(self):
        data, patterns, source = build_workload(patterns=1)
        reference = MatchingService().match(
            patterns[0], data, source, XI, injective=True, pick="arbitrary"
        )

        async def run():
            async with AsyncMatchingService() as service:
                return await service.match(
                    patterns[0], data, source, XI, injective=True, pick="arbitrary"
                )

        report = asyncio.run(run())
        assert report.result.mapping == reference.result.mapping
        assert report.result.injective is True

    def test_semaphore_bounds_inflight_solves(self):
        data, patterns, source = build_workload(patterns=12)
        bound = 3
        service = MatchingService()
        inner = service.match
        state = {"now": 0, "peak": 0}
        gate = threading.Lock()

        def spying_match(*args, **kwargs):
            with gate:
                state["now"] += 1
                state["peak"] = max(state["peak"], state["now"])
            try:
                return inner(*args, **kwargs)
            finally:
                with gate:
                    state["now"] -= 1

        service.match = spying_match  # type: ignore[method-assign]

        async def run():
            async with AsyncMatchingService(service, max_concurrency=bound) as aio:
                await aio.match_many(patterns, data, source, XI)

        asyncio.run(run())
        assert 1 <= state["peak"] <= bound

    def test_sharded_passthrough(self):
        data, patterns, source = build_workload()
        sharded = ShardedMatchingService(2)
        reference = sharded.match_sharded(patterns[0], data, source, XI)

        async def run():
            async with AsyncMatchingService(sharded) as service:
                fanned = await service.match_sharded(patterns[0], data, source, XI)
                routed = await service.match(patterns[0], data, source, XI)
                return fanned, routed

        fanned, routed = asyncio.run(run())
        assert fanned.result.mapping == reference.result.mapping
        assert routed.result.mapping  # hash-routed whole-graph request

    def test_match_sharded_requires_sharded_service(self):
        data, patterns, source = build_workload(patterns=1)

        async def run():
            async with AsyncMatchingService() as service:
                await service.match_sharded(patterns[0], data, source, XI)

        with pytest.raises(InputError):
            asyncio.run(run())


class TestLifecycle:
    def test_service_survives_multiple_event_loops(self):
        data, patterns, source = build_workload(patterns=3)
        service = AsyncMatchingService(max_concurrency=2)
        try:
            first = asyncio.run(service.match_many(patterns, data, source, XI))
            second = asyncio.run(service.match_many(patterns, data, source, XI))
            assert [r.result.mapping for r in first] == [
                r.result.mapping for r in second
            ]
            snapshot = service.service.stats.snapshot()
            assert snapshot["calls"] == 2 * len(patterns)
            assert snapshot["prepares"] == 1  # cache survives loop turnover
        finally:
            service.close()

    def test_closed_service_rejects_requests(self):
        data, patterns, source = build_workload(patterns=1)
        service = AsyncMatchingService()
        service.close()
        service.close()  # idempotent

        async def run():
            await service.match(patterns[0], data, source, XI)

        with pytest.raises(InputError):
            asyncio.run(run())

    def test_external_executor_left_running(self):
        from concurrent.futures import ThreadPoolExecutor

        data, patterns, source = build_workload(patterns=2)
        with ThreadPoolExecutor(max_workers=2) as pool:
            service = AsyncMatchingService(executor=pool)
            asyncio.run(service.match(patterns[0], data, source, XI))
            service.close()
            # The pool is still usable: close() must not have shut it down.
            assert pool.submit(lambda: 41 + 1).result() == 42

    def test_validation(self):
        with pytest.raises(InputError):
            AsyncMatchingService(max_concurrency=0)
        assert "AsyncMatchingService" in repr(AsyncMatchingService())


class TestSemaphoreHousekeeping:
    def test_live_loop_semaphores_survive_closed_loop_eviction(self):
        """Only semaphores of *closed* loops are evicted: a service shared
        across many loops must never hand a live loop a fresh (full-permit)
        semaphore while its old one still holds acquired permits."""
        service = AsyncMatchingService(max_concurrency=2)
        try:
            live_loop = asyncio.new_event_loop()
            try:
                live_sem = live_loop.run_until_complete(
                    _grab_semaphore(service)
                )
                # Churn through more loops than the old clear() threshold.
                for _ in range(12):
                    asyncio.run(_grab_semaphore(service))
                again = live_loop.run_until_complete(_grab_semaphore(service))
                assert again is live_sem  # the live loop kept its semaphore
            finally:
                live_loop.close()
            # The closed loops' semaphores were garbage-collected away.
            with service._lock:
                remaining = [
                    loop for loop, _ in service._semaphores.values()
                    if not loop.is_closed()
                ]
            assert remaining == []
        finally:
            service.close()


async def _grab_semaphore(service):
    return service._semaphore()


class TestLockDiscipline:
    """Satellite audit of core/aio.py: repro-lint found no RL001/RL002
    violations (its lock blocks only build executors/semaphores and all
    stats flow through the inner service's stats lock).  These tests pin
    that clean bill of health behaviorally and statically."""

    def test_stats_never_tear_under_async_fanout(self):
        """Every snapshot taken while async fan-out is in flight keeps
        calls == sum(solved_by): the inner service bundles both under
        the stats lock, and nothing in aio.py bypasses it."""
        data, patterns, source = build_workload(patterns=6)
        torn = []
        stop = threading.Event()

        async def run():
            async with AsyncMatchingService(max_concurrency=4) as service:
                def watch():
                    while not stop.is_set():
                        snap = service.service.stats.snapshot()
                        if snap["calls"] != sum(snap["solved_by"].values()):
                            torn.append(snap)

                watcher = threading.Thread(target=watch)
                watcher.start()
                try:
                    for _ in range(5):
                        await service.match_many(patterns, data, source, XI)
                finally:
                    stop.set()
                    watcher.join(10)
                return service.service.stats.snapshot()

        snap = asyncio.run(run())
        assert not torn, torn[:3]
        assert snap["calls"] == 5 * len(patterns)
        assert snap["calls"] == sum(snap["solved_by"].values())

    def test_repro_lint_finds_no_lock_violations_in_aio_or_sharding(self):
        """Regression proof for the ISSUE-7 audit: RL001/RL002 report
        zero findings on core/aio.py and core/sharding.py (sharding's
        under-lock subgraph builds were fixed to the off-lock pattern)."""
        import repro.core.aio as aio_module
        import repro.core.sharding as sharding_module
        from repro.analysis import all_rules, run_analysis

        report = run_analysis(
            [aio_module.__file__, sharding_module.__file__],
            rules=all_rules(),
            select=["RL001", "RL002"],
        )
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        assert len(report.files) == 2


class TestCloseDrainsInflight:
    def test_close_waits_for_admitted_requests(self):
        """An admitted request must never hit a shut-down executor.

        The race this pins: a request passes the closed check and is
        committed to the pool, but ``close()`` runs before the actual
        executor submission.  Pre-fix, ``close()`` had nothing to wait
        on — it shut the pool down immediately and the delegated submit
        exploded with ``RuntimeError: cannot schedule new futures after
        shutdown``.  Post-fix the in-flight count makes ``close()``
        block until the admitted request completes.
        """
        data, patterns, source = build_workload(patterns=2)
        service = AsyncMatchingService(max_concurrency=2)
        close_started = threading.Event()
        close_done = threading.Event()

        def closer():
            close_started.set()
            service.close()
            close_done.set()

        async def run():
            loop = asyncio.get_running_loop()
            real = loop.run_in_executor
            fired = False

            def racing(executor, fn, *args):
                nonlocal fired
                if not fired:
                    fired = True
                    threading.Thread(target=closer, daemon=True).start()
                    assert close_started.wait(5)
                    # Give close() every chance to finish tearing the
                    # pool down.  It must NOT manage to: this request is
                    # already admitted, so the drain blocks.
                    assert not close_done.wait(0.3), (
                        "close() completed with a request admitted but "
                        "not yet submitted"
                    )
                return real(executor, fn, *args)

            loop.run_in_executor = racing  # instance patch; loop dies with run()
            return await service.match(patterns[0], data, source, XI)

        report = asyncio.run(run())
        assert report.result is not None
        # With the request finished, the drain releases and close lands.
        assert close_done.wait(5)

        async def rejected():
            await service.match(patterns[0], data, source, XI)

        with pytest.raises(InputError):
            asyncio.run(rejected())

    def test_close_mid_burst_rejects_or_completes_never_breaks(self):
        """Every request of a burst interrupted by ``close()`` either
        completes normally or is rejected with InputError — no request
        may surface RuntimeError from the executor teardown."""
        data, patterns, source = build_workload(patterns=4)

        async def run():
            service = AsyncMatchingService(max_concurrency=2)

            async def one(pattern):
                try:
                    return await service.match(pattern, data, source, XI)
                except InputError:
                    return "rejected"

            tasks = [
                asyncio.ensure_future(one(p)) for p in (patterns * 4)[:12]
            ]
            await asyncio.sleep(0.005)  # let some requests get admitted
            closer = threading.Thread(target=service.close)
            closer.start()
            results = await asyncio.gather(*tasks)
            closer.join(10)
            assert not closer.is_alive()
            return results

        results = asyncio.run(run())
        completed = [r for r in results if r != "rejected"]
        for report in completed:
            assert report.result is not None
