"""Tests for shared utilities: rng derivation, timing, errors."""

import time

import pytest

from repro.utils.errors import TimeBudgetExceeded
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.timing import Deadline, Stopwatch


class TestRng:
    def test_same_keys_same_seed(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_different_keys_differ(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_key_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_derive_rng_streams_reproducible(self):
        first = [derive_rng(3, "x").random() for _ in range(5)]
        second = [derive_rng(3, "x").random() for _ in range(5)]
        assert first == second

    def test_derive_rng_streams_independent(self):
        assert derive_rng(3, "x").random() != derive_rng(3, "y").random()


class TestStopwatch:
    def test_elapsed_nonnegative(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed >= 0.0

    def test_elapsed_readable_inside_block(self):
        with Stopwatch() as watch:
            first = watch.elapsed
            time.sleep(0.002)
            assert watch.elapsed >= first

    def test_elapsed_frozen_after_exit(self):
        with Stopwatch() as watch:
            time.sleep(0.001)
        frozen = watch.elapsed
        time.sleep(0.002)
        assert watch.elapsed == frozen


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        deadline.check()  # must not raise
        assert deadline.remaining is None

    def test_expiry_raises_with_incumbent(self):
        deadline = Deadline(0.001)
        time.sleep(0.005)
        assert deadline.expired()
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            deadline.check("unit-test", best_so_far={"x"})
        assert excinfo.value.best_so_far == {"x"}
        assert "unit-test" in str(excinfo.value)

    def test_remaining_clamped_to_zero(self):
        deadline = Deadline(0.001)
        time.sleep(0.005)
        assert deadline.remaining == 0.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)
