"""Exception types shared across the library.

The library raises narrow exception types so callers can distinguish
programming errors (bad inputs) from resource-budget conditions (an exact
algorithm exceeding its time allowance, which the experiment harness reports
as ``N/A`` like the paper does for cdkMCS).
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InputError(ReproError, ValueError):
    """An argument violates a documented precondition."""


class GraphError(ReproError, KeyError):
    """A node or edge reference does not exist in the graph."""


class TimeBudgetExceeded(ReproError, TimeoutError):
    """An algorithm with a wall-clock budget ran out of time.

    Exact, exponential-time procedures (maximum common subgraph, exact
    clique search) accept a budget and raise this exception when they
    cannot finish; the experiment harness turns it into an ``N/A`` cell,
    mirroring "did not run to completion" in Table 3 of the paper.
    """

    def __init__(self, message: str, best_so_far=None):
        super().__init__(message)
        #: Best incumbent solution found before the budget ran out (may be None).
        self.best_so_far = best_so_far
