"""Bounded p-homomorphism: edges map to paths of length ≤ k.

An extension the paper positions against related work: Zou et al. [32]
consider "a form of graph pattern matching in which edges denote paths
with a fixed length".  Bounded p-hom interpolates between the classical
and the revised notions:

* ``k = 1`` — edges map to single edges: graph homomorphism with node
  similarity (and subgraph-isomorphism-style matching for the 1-1 form);
* ``k = ∞`` — the paper's p-hom (any nonempty path).

Everything else (the similarity threshold, the matching-list engine, the
quality metrics) is unchanged: only the reachability relation differs, so
this module builds hop-bounded reachability masks and reuses the
:mod:`repro.core.engine` machinery verbatim — a direct payoff of keeping
the engine mask-parametric.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.decision import find_phom_mapping
from repro.core.engine import comp_max_card_engine
from repro.core.phom import PHomResult
from repro.core.workspace import MatchingWorkspace
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError
from repro.utils.timing import Stopwatch

__all__ = [
    "bounded_reachability_masks",
    "bounded_workspace",
    "comp_max_card_bounded",
    "is_phom_bounded",
]

Node = Hashable


def bounded_reachability_masks(
    graph: DiGraph,
    max_hops: int,
    order: list[Node],
) -> list[int]:
    """Bitmask per node of everything reachable within 1..``max_hops`` edges.

    ``order`` fixes the bit positions (the workspace's data-node order).
    BFS per node, depth-capped; O(|V|·|E|) for constant ``max_hops``.
    """
    if max_hops < 1:
        raise InputError("max_hops must be at least 1")
    position = {node: i for i, node in enumerate(order)}
    masks: list[int] = []
    for source in order:
        mask = 0
        depth_of = {source: 0}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            depth = depth_of[node]
            if depth >= max_hops:
                continue
            for succ in graph.successors(node):
                mask |= 1 << position[succ]  # reached in depth+1 ≥ 1 hops
                if succ not in depth_of:
                    depth_of[succ] = depth + 1
                    queue.append(succ)
        masks.append(mask)
    return masks


def bounded_workspace(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    max_hops: int,
    backend=None,
) -> MatchingWorkspace:
    """A matching workspace whose reachability is hop-bounded.

    The standard workspace is built first (it also computes candidates and
    preference orders); its closure masks are then replaced with the
    hop-bounded ones, and candidates of self-loop pattern nodes are
    re-filtered against the bounded cycle mask.
    """
    workspace = MatchingWorkspace(graph1, graph2, mat, xi, backend=backend)
    # Replacing the rows after construction is safe for every backend:
    # engine contexts are built lazily on first solve, so they observe
    # the bounded rows, not the prepared index's unbounded ones.
    workspace.from_mask = bounded_reachability_masks(graph2, max_hops, workspace.nodes2)
    workspace.to_mask = bounded_reachability_masks(
        graph2.reversed(), max_hops, workspace.nodes2
    )
    cycle_mask = 0
    for i in range(len(workspace.nodes2)):
        if workspace.from_mask[i] >> i & 1:
            cycle_mask |= 1 << i
    workspace.cycle_mask = cycle_mask
    for v_idx, v in enumerate(workspace.nodes1):
        if graph1.has_self_loop(v):
            workspace.scores[v_idx] = {
                u: s for u, s in workspace.scores[v_idx].items() if cycle_mask >> u & 1
            }
            mask = 0
            for u in workspace.scores[v_idx]:
                mask |= 1 << u
            workspace.cand_mask[v_idx] = mask
            workspace.pref[v_idx] = sorted(
                workspace.scores[v_idx],
                key=lambda u: (-workspace.scores[v_idx][u], u),
            )
    return workspace


def comp_max_card_bounded(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    max_hops: int,
    injective: bool = False,
    pick: str = "similarity",
    backend=None,
) -> PHomResult:
    """compMaxCard under the k-bounded path semantics."""
    with Stopwatch() as watch:
        workspace = bounded_workspace(graph1, graph2, mat, xi, max_hops, backend=backend)
        pairs, stats = comp_max_card_engine(
            workspace, workspace.initial_good(), injective=injective, pick=pick
        )
    stats["max_hops"] = max_hops
    stats["elapsed_seconds"] = watch.elapsed
    return PHomResult(
        mapping=workspace.mapping_to_nodes(pairs),
        qual_card=workspace.qual_card_of(pairs),
        qual_sim=workspace.qual_sim_of(pairs),
        injective=injective,
        stats=stats,
    )


def is_phom_bounded(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    max_hops: int,
    injective: bool = False,
    budget_seconds: float | None = None,
) -> bool:
    """Exact decision of ``G1 ≾ G2`` under k-bounded path semantics."""
    workspace = bounded_workspace(graph1, graph2, mat, xi, max_hops)
    return (
        find_phom_mapping(
            graph1,
            graph2,
            mat,
            xi,
            injective=injective,
            budget_seconds=budget_seconds,
            workspace=workspace,
        )
        is not None
    )
