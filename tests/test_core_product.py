"""Tests for the product graph and the Claim 2 correspondence.

Claim 2 (Appendix A): node sets of the complement Gc are independent sets
iff the corresponding pair sets are p-hom mappings from induced subgraphs
of G1 — equivalently, cliques of the product graph are exactly the p-hom
mappings.  These tests verify the correspondence in both directions on
random instances, which exercises every condition (a)-(c) of the
construction.
"""

import itertools
import random

import pytest

from repro.core.phom import check_phom_mapping
from repro.core.product import (
    mapping_to_pairs,
    pairs_to_mapping,
    product_graph,
    wis_instance,
)
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError

from helpers import make_random_instance


class TestConstruction:
    def test_nodes_are_threshold_pairs(self):
        g1 = DiGraph.from_edges([("a", "b")])
        g2 = DiGraph.from_edges([("x", "y")])
        mat = SimilarityMatrix.from_pairs(
            {("a", "x"): 0.9, ("a", "y"): 0.3, ("b", "y"): 0.7}
        )
        product = product_graph(g1, g2, mat, xi=0.5)
        assert set(product.nodes()) == {("a", "x"), ("b", "y")}

    def test_edge_requires_path_consistency(self):
        g1 = DiGraph.from_edges([("a", "b")])
        g2 = DiGraph.from_edges([("x", "y")])
        mat = SimilarityMatrix.from_pairs(
            {("a", "x"): 1.0, ("b", "y"): 1.0, ("a", "y"): 1.0, ("b", "x"): 1.0}
        )
        product = product_graph(g1, g2, mat, xi=0.5)
        # (a,x)-(b,y) consistent: edge a->b maps to path x->y.
        assert product.has_edge(("a", "x"), ("b", "y"))
        # (a,y)-(b,x) inconsistent: no path y ~> x.
        assert not product.has_edge(("a", "y"), ("b", "x"))

    def test_same_pattern_node_never_adjacent(self):
        g1 = DiGraph.from_edges([], nodes=["a"])
        g2 = DiGraph.from_edges([], nodes=["x", "y"])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0, ("a", "y"): 1.0})
        product = product_graph(g1, g2, mat, xi=0.5)
        assert not product.has_edge(("a", "x"), ("a", "y"))

    def test_injective_excludes_shared_targets(self):
        g1 = DiGraph.from_edges([], nodes=["a", "b"])
        g2 = DiGraph.from_edges([], nodes=["x"])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0, ("b", "x"): 1.0})
        plain = product_graph(g1, g2, mat, xi=0.5, injective=False)
        assert plain.has_edge(("a", "x"), ("b", "x"))
        one_one = product_graph(g1, g2, mat, xi=0.5, injective=True)
        assert not one_one.has_edge(("a", "x"), ("b", "x"))

    def test_self_loop_condition_filters_candidates(self):
        g1 = DiGraph.from_edges([("a", "a")])
        g2 = DiGraph.from_edges([("x", "y"), ("y", "x"), ("y", "z")])
        mat = SimilarityMatrix.from_pairs(
            {("a", "x"): 1.0, ("a", "z"): 1.0}
        )
        product = product_graph(g1, g2, mat, xi=0.5)
        # z is not on a cycle, so (a, z) is not even a node.
        assert ("a", "x") in product
        assert ("a", "z") not in product

    def test_weighting_modes(self):
        g1 = DiGraph.from_edges([], nodes=["a"])
        g1.set_weight("a", 4.0)
        g2 = DiGraph.from_edges([], nodes=["x"])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 0.5})
        sim = product_graph(g1, g2, mat, xi=0.5, weighting="similarity")
        assert sim.weight(("a", "x")) == pytest.approx(2.0)
        card = product_graph(g1, g2, mat, xi=0.5, weighting="cardinality")
        assert card.weight(("a", "x")) == 1.0
        with pytest.raises(InputError):
            product_graph(g1, g2, mat, xi=0.5, weighting="bogus")


class TestClaim2:
    @pytest.mark.parametrize("seed", range(10))
    def test_cliques_are_exactly_phom_mappings(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=4, n2=4, sim_density=0.6)
        product = product_graph(g1, g2, mat, xi=0.5)
        nodes = list(product.nodes())
        for r in range(1, min(4, len(nodes)) + 1):
            for combo in itertools.combinations(nodes, r):
                vs = [v for v, _ in combo]
                if len(set(vs)) != len(vs):
                    continue  # not a function: cannot be a clique by cond (a)
                mapping = pairs_to_mapping(combo)
                is_clique = product.is_clique(combo)
                is_valid = check_phom_mapping(g1, g2, mapping, mat, 0.5) == []
                assert is_clique == is_valid, (combo, mapping)

    @pytest.mark.parametrize("seed", range(6))
    def test_complement_independent_sets_match(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=3, n2=4, sim_density=0.6)
        product = product_graph(g1, g2, mat, xi=0.5)
        complement = wis_instance(g1, g2, mat, xi=0.5)
        assert set(product.nodes()) == set(complement.nodes())
        nodes = list(product.nodes())
        for r in range(1, min(3, len(nodes)) + 1):
            for combo in itertools.combinations(nodes, r):
                assert product.is_clique(combo) == complement.is_independent_set(combo)


class TestMappingConversion:
    def test_round_trip(self):
        mapping = {"a": "x", "b": "y"}
        assert pairs_to_mapping(mapping_to_pairs(mapping)) == mapping

    def test_non_function_rejected(self):
        with pytest.raises(InputError):
            pairs_to_mapping([("a", "x"), ("a", "y")])

    def test_duplicate_pair_tolerated(self):
        assert pairs_to_mapping([("a", "x"), ("a", "x")]) == {"a": "x"}
