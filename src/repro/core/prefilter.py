"""Candidate-mask prefilter pipeline: prune pairs and shards before engines.

The engine enumerates from the candidate rows a workspace materialises;
every infeasible ``(v, u)`` pair that survives into ``initial_good()``
costs backend frames before ``trimMatching`` kills it, and in the
sharded router a component fans out to every candidate shard before a
single engine runs.  This module is the filter ladder in front of all
of that, in three rungs:

1. **Data-side closure sketches** (:func:`build_sketches`) — per-node
   summaries derived from the closure masks a
   :class:`~repro.core.prepared.PreparedDataGraph` already holds:

   * ``out_card[u]`` / ``in_card[u]`` — popcounts of ``from_mask[u]`` /
     ``to_mask[u]`` (descendant / ancestor closure cardinalities);
   * ``out_sig[u]`` / ``in_sig[u]`` — :data:`SIG_BITS`-bit hashed
     signatures of the *label set* of ``u``'s descendant / ancestor
     closure (a tiny Bloom filter: a set bit means "some closure node's
     label hashes here", a clear bit proves the label set excludes
     every label hashing there).

   Sketches persist in the store payload (v3 section, v2 read-compat)
   and evolve incrementally with ``apply_delta``; the mmap backend views
   them in place like mask rows.

2. **Transparent similarity gating** (:class:`LabelEqualitySimilarity`,
   :func:`label_gate_of`, :func:`gated_candidate_rows`) — a similarity
   *source* that declares its semantics (label equality, constant
   score) lets the service build candidate rows straight from a label
   index without ever materialising a similarity matrix, and lets the
   router consult only shards whose label signature can host a pattern
   label.  Sources that stay opaque callables get a conservative
   bypass (counted, never guessed at) so results are bit-identical in
   every mode.

3. **Strict pair pruning** (:func:`pattern_sketches`,
   :func:`strict_filter_rows`) — the documented *approximate* tier:
   drop ``(v, u)`` when ``u``'s closure sketch provably cannot cover
   the labels (or distinct-label count) of ``v``'s pattern closure.
   Any mapping the engine then returns is still a valid p-hom mapping
   (removing candidates never invalidates one), and under a label-gated
   source a *total* mapping through ``v`` would need exactly that
   coverage — but maximum-cardinality *partial* mappings may shrink, so
   ``strict`` is opt-in and never the default.

Soundness of the bit-identical (``auto``) rungs:

* :func:`gated_candidate_rows` reproduces the workspace's ξ/cycle
  filtered rows exactly because a gated source scores label-equal pairs
  at a constant ``1.0 ≥ ξ`` (``validate_threshold`` pins ξ to (0, 1])
  and everything else at 0.
* Shard-signature consultation only skips shards with *no* label-equal
  member for any pattern node — shards that could never contribute a
  candidate row entry.

Everything here manipulates closure masks through
:mod:`repro.core.backends.bitops` — this module is inside repro-lint
RL004's confinement scope.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.backends.bitops import (
    exclude,
    has_bit,
    intersects,
    iter_set_bits,
    popcount,
    set_bit,
)
from repro.graph.digraph import DiGraph
from repro.similarity.labels import label_equality_matrix
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError

__all__ = [
    "PREFILTER_MODES",
    "SIG_BITS",
    "ClosureSketches",
    "LabelEqualitySimilarity",
    "PatternSketches",
    "build_sketches",
    "gated_candidate_rows",
    "label_bit",
    "label_gate_of",
    "label_planes",
    "label_signature",
    "node_sketch",
    "pattern_sketches",
    "strict_filter_rows",
    "validate_prefilter",
]

Node = Hashable

#: Recognised prefilter modes.  ``off`` is the seed behaviour (no
#: filtering, counters stay zero); ``auto`` applies every *bit-identical*
#: rung (route-scoped rows, gated row construction, shard-signature
#: consultation) and conservatively bypasses opaque sources; ``strict``
#: adds sketch-based pair pruning — valid mappings always, full quality
#: not guaranteed (the approximate tier).
PREFILTER_MODES = ("auto", "off", "strict")

#: Width of the hashed label-set signatures.  64 keeps a signature a
#: single machine word: one per-node uint64 in the store payload, viewed
#: in place by the mmap backend exactly like a mask-row word.
SIG_BITS = 64


def validate_prefilter(mode: str) -> None:
    """Reject unknown prefilter modes with a clear error."""
    if mode not in PREFILTER_MODES:
        raise InputError(
            f"prefilter must be one of {PREFILTER_MODES}, got {mode!r}"
        )


def label_bit(label: object) -> int:
    """The signature bit of ``label`` — a stable hash into [0, SIG_BITS).

    Keyed on ``repr(label)`` via blake2b rather than ``hash()``: builtin
    string hashing is randomised per process, and these bits persist in
    store payloads that must mean the same thing in every process that
    maps them.
    """
    digest = hashlib.blake2b(repr(label).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "little") % SIG_BITS


def label_signature(labels: Iterable[object]) -> int:
    """The :data:`SIG_BITS`-bit signature of a label set."""
    sig = 0
    for label in labels:
        sig = set_bit(sig, label_bit(label))
    return sig


def label_planes(labels: Sequence[object]) -> list[int]:
    """Per-signature-bit node bitmasks: ``planes[b]`` has bit ``i`` set
    iff ``labels[i]`` hashes to signature bit ``b``.

    One pass over the nodes turns every subsequent closure-signature
    computation into :data:`SIG_BITS` mask intersection tests instead of
    a walk over the closure's members.
    """
    planes = [0] * SIG_BITS
    for i, label in enumerate(labels):
        bit = label_bit(label)
        planes[bit] = set_bit(planes[bit], i)
    return planes


def node_sketch(
    from_row: int, to_row: int, planes: Sequence[int]
) -> tuple[int, int, int, int]:
    """``(out_card, in_card, out_sig, in_sig)`` of one node's closure rows."""
    out_sig = 0
    in_sig = 0
    for bit, plane in enumerate(planes):
        if plane:
            if intersects(from_row, plane):
                out_sig = set_bit(out_sig, bit)
            if intersects(to_row, plane):
                in_sig = set_bit(in_sig, bit)
    return popcount(from_row), popcount(to_row), out_sig, in_sig


@dataclass(frozen=True)
class ClosureSketches:
    """Per-node closure sketches of a prepared data graph.

    Each field is a length-``n`` sequence aligned with the prepared
    index's node enumeration.  Plain lists of ints when built in
    process; uint64 array views over the store file when hydrated by the
    mmap backend — consumers coerce entries with ``int()`` at the access
    point.
    """

    out_card: Sequence[int]
    in_card: Sequence[int]
    out_sig: Sequence[int]
    in_sig: Sequence[int]

    def __len__(self) -> int:
        return len(self.out_card)


def build_sketches(
    from_mask: Sequence[int],
    to_mask: Sequence[int],
    labels: Sequence[object],
) -> ClosureSketches:
    """Compute :class:`ClosureSketches` from closure rows and node labels."""
    planes = label_planes(labels)
    out_card: list[int] = []
    in_card: list[int] = []
    out_sig: list[int] = []
    in_sig: list[int] = []
    for i in range(len(labels)):
        oc, ic, osig, isig = node_sketch(from_mask[i], to_mask[i], planes)
        out_card.append(oc)
        in_card.append(ic)
        out_sig.append(osig)
        in_sig.append(isig)
    return ClosureSketches(out_card, in_card, out_sig, in_sig)


# ----------------------------------------------------------------------
# Transparent similarity gating (the bit-identical fast path)
# ----------------------------------------------------------------------
class LabelEqualitySimilarity:
    """Label-equality similarity as a *transparent* callable source.

    Calling it is exactly
    :func:`repro.similarity.labels.label_equality_matrix` — same pairs,
    same scores, same row order — so any code path that materialises the
    matrix is unchanged.  What the class adds is *declared semantics*:
    the prefilter pipeline (:func:`label_gate_of`) recognises it and can
    build candidate rows from a label index, or consult shard label
    signatures, without evaluating the matrix at all, knowing the result
    is bit-identical.
    """

    #: Constant score of every label-equal pair.  ``validate_threshold``
    #: pins ξ ≤ 1.0, so gated rows never need a ξ comparison.
    score = 1.0

    def __call__(self, graph1: DiGraph, graph2: DiGraph) -> SimilarityMatrix:
        return label_equality_matrix(graph1, graph2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LabelEqualitySimilarity()"


def label_gate_of(source: object) -> "LabelEqualitySimilarity | None":
    """The label gate of a similarity source, or ``None`` if opaque.

    Only sources that *declare* label-equality semantics are gated;
    arbitrary callables and pre-built matrices stay opaque and take the
    conservative bypass (``filter_bypasses`` counts them).  Notably
    ``LabelGroupSimilarity`` is **not** gated: its scores come from a
    memoised RNG whose draw order is part of the observable result.
    """
    return source if isinstance(source, LabelEqualitySimilarity) else None


def gated_candidate_rows(
    gate: LabelEqualitySimilarity,
    graph1: DiGraph,
    prepared,
) -> "list[dict[Node, float]]":
    """Candidate rows for a gated source, straight from the label index.

    Bit-identical to what :class:`~repro.core.workspace.MatchingWorkspace`
    would materialise from the evaluated matrix: one row per pattern
    node in pattern order, keyed by data node in data-graph enumeration
    order, ξ-filtering vacuous (constant score 1.0), self-loop pattern
    nodes restricted to the cycle mask.
    """
    label_index = prepared.label_index
    index2 = prepared.index2
    cycle_mask = prepared.cycle_mask
    score = gate.score
    rows: list[dict[Node, float]] = []
    for v in graph1.nodes():
        members = label_index.get(graph1.label(v), ())
        if graph1.has_self_loop(v):
            row = {u: score for u in members if has_bit(cycle_mask, index2[u])}
        else:
            row = {u: score for u in members}
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Strict pair pruning (the approximate tier)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternSketches:
    """Pattern-side closure requirements, aligned with pattern node order.

    ``out_need[v]`` / ``in_need[v]`` count the *distinct labels* in
    ``v``'s descendant / ancestor closure (each distinct label needs at
    least one distinct data node to host it); ``out_sig`` / ``in_sig``
    are the hashed signatures of those label sets.
    """

    out_need: Sequence[int]
    in_need: Sequence[int]
    out_sig: Sequence[int]
    in_sig: Sequence[int]


def pattern_sketches(graph1: DiGraph) -> PatternSketches:
    """Compute :class:`PatternSketches` of a pattern graph."""
    # Local import: prepared.py lazily imports this module for its
    # data-side sketches property.
    from repro.core.prepared import PreparedDataGraph

    closure = PreparedDataGraph(graph1)
    labels = [graph1.label(v) for v in closure.nodes2]
    out_need: list[int] = []
    in_need: list[int] = []
    out_sig: list[int] = []
    in_sig: list[int] = []
    for i in range(len(labels)):
        down = {labels[j] for j in iter_set_bits(closure.from_mask[i])}
        up = {labels[j] for j in iter_set_bits(closure.to_mask[i])}
        out_need.append(len(down))
        in_need.append(len(up))
        out_sig.append(label_signature(down))
        in_sig.append(label_signature(up))
    return PatternSketches(out_need, in_need, out_sig, in_sig)


def strict_filter_rows(
    rows: "list[dict[int, float]]",
    pattern: PatternSketches,
    sketches: ClosureSketches,
) -> "tuple[list[dict[int, float]], int]":
    """Prune index-keyed candidate rows against the data sketches.

    ``rows[v]`` maps *data node indexes* to scores (the workspace's
    internal representation).  A pair ``(v, u)`` survives iff ``u``'s
    closure could host every distinct label of ``v``'s pattern closure:
    cardinalities large enough, signature bits a superset (``exclude``
    of the requirement by the capability leaves nothing).  Returns the
    filtered rows and the number of pairs dropped.
    """
    out_card = sketches.out_card
    in_card = sketches.in_card
    out_sig = sketches.out_sig
    in_sig = sketches.in_sig
    pruned = 0
    filtered: list[dict[int, float]] = []
    for v_idx, row in enumerate(rows):
        need_out = pattern.out_need[v_idx]
        need_in = pattern.in_need[v_idx]
        sig_out = pattern.out_sig[v_idx]
        sig_in = pattern.in_sig[v_idx]
        if not need_out and not need_in:
            filtered.append(row)
            continue
        kept = {
            u_idx: score
            for u_idx, score in row.items()
            if need_out <= int(out_card[u_idx])
            and need_in <= int(in_card[u_idx])
            and exclude(sig_out, int(out_sig[u_idx])) == 0
            and exclude(sig_in, int(in_sig[u_idx])) == 0
        }
        pruned += len(row) - len(kept)
        filtered.append(kept)
    return filtered, pruned
