"""Tests for graph simulation (HHK) with similarity thresholds."""

import itertools
import pytest

from repro.baselines.simulation import graph_simulation, simulates
from repro.graph.closure import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph
from repro.similarity.labels import label_equality_matrix
from repro.similarity.matrix import SimilarityMatrix

from helpers import make_random_instance


def brute_force_max_simulation(g1, g2, mat, xi):
    """Oracle: refine the candidate relation until stable, naively."""
    relation = {v: set(mat.candidates(v, xi)) for v in g1.nodes()}
    changed = True
    while changed:
        changed = False
        for v in g1.nodes():
            for u in list(relation[v]):
                for v_next in g1.successors(v):
                    if not any(
                        u_next in relation[v_next] for u_next in g2.successors(u)
                    ):
                        relation[v].discard(u)
                        changed = True
                        break
    return relation


class TestSimulation:
    def test_identical_graphs_simulate(self):
        graph = path_graph(4)
        mat = label_equality_matrix(graph, graph)
        assert simulates(graph, graph, mat, 0.5)

    def test_edge_to_path_breaks_simulation(self):
        """The defining weakness vs p-hom: a stretched edge kills simulation."""
        g1 = DiGraph.from_edges([("a", "b")], labels={"a": "A", "b": "B"})
        g2 = DiGraph.from_edges(
            [("x", "m"), ("m", "y")], labels={"x": "A", "m": "M", "y": "B"}
        )
        mat = label_equality_matrix(g1, g2)
        assert not simulates(g1, g2, mat, 0.5)
        # ... while p-hom handles it.
        from repro.core.decision import is_phom

        assert is_phom(g1, g2, mat, 0.5)

    def test_simulation_weaker_than_isomorphism(self):
        """Two A-children can be simulated by one A-child (relation, not function)."""
        g1 = DiGraph.from_edges(
            [("r", "a1"), ("r", "a2")], labels={"r": "R", "a1": "A", "a2": "A"}
        )
        g2 = DiGraph.from_edges([("s", "a")], labels={"s": "R", "a": "A"})
        mat = label_equality_matrix(g1, g2)
        assert simulates(g1, g2, mat, 0.5)

    def test_cycle_simulated_by_cycle(self):
        g1 = cycle_graph(2)
        g2 = cycle_graph(3)
        mat = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2.nodes():
                mat.set(v, u, 1.0)
        assert simulates(g1, g2, mat, 0.5)

    def test_leaf_constraint(self):
        # A node with successors cannot be simulated by a sink.
        g1 = path_graph(2)
        g2 = DiGraph.from_edges([], nodes=["sink"])
        mat = SimilarityMatrix.from_pairs({(0, "sink"): 1.0, (1, "sink"): 1.0})
        result = graph_simulation(g1, g2, mat, 0.5)
        assert not result.total
        assert result.relation[0] == set()
        assert result.relation[1] == {"sink"}
        assert result.coverage == 0.5

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_naive_fixpoint(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=5, n2=6)
        ours = graph_simulation(g1, g2, mat, 0.5).relation
        oracle = brute_force_max_simulation(g1, g2, mat, 0.5)
        assert ours == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_simulation_implies_phom_on_trees(self, seed):
        """On DAG patterns, total simulation implies a total p-hom mapping."""
        from repro.core.decision import is_phom
        from repro.graph.generators import random_tree
        import random

        rng = random.Random(seed)
        g1 = random_tree(5, rng)
        g2, mat = None, None
        g1b, g2, mat = make_random_instance(seed, n1=5, n2=7)
        # reuse g2/mat but pattern is the tree with fresh similarities
        mat2 = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2.nodes():
                if rng.random() < 0.5:
                    mat2.set(v, u, 1.0)
        if simulates(g1, g2, mat2, 0.5):
            assert is_phom(g1, g2, mat2, 0.5)

    def test_empty_pattern_trivially_simulates(self):
        result = graph_simulation(DiGraph(), path_graph(2), SimilarityMatrix(), 0.5)
        assert result.total
        assert result.coverage == 1.0
