"""CliqueRemoval and ISRemoval (Boppana & Halldórsson; paper Fig. 9).

``clique_removal`` approximates a **maximum independent set** within
O(n/log²n): repeatedly run Ramsey, keep the best independent set seen, and
delete the returned clique from the graph.  ``is_removal`` is the exact
dual (shown as Fig. 9 in the paper): it approximates a **maximum clique**
by repeatedly deleting independent sets.  The paper's compMaxCard simulates
``is_removal`` on the (implicit) product graph — σ plays the clique, I the
independent set that gets removed from the matching list.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.undirected import Graph
from repro.wis.ramsey import ramsey

__all__ = ["clique_removal", "is_removal"]

Node = Hashable


def clique_removal(graph: Graph) -> tuple[set[Node], list[set[Node]]]:
    """Approximate a maximum independent set.

    Returns ``(independent_set, cliques)`` where ``cliques`` is the clique
    cover that was peeled off (it partitions the vertex set — a fact the
    O(n/log²n) guarantee rests on, and which the tests assert).
    """
    order = {node: i for i, node in enumerate(graph.nodes())}
    active = set(graph.nodes())
    best_iset: set[Node] = set()
    cliques: list[set[Node]] = []
    while active:
        clique, iset = ramsey(graph, within=active, order=order)
        if len(iset) > len(best_iset):
            best_iset = iset
        cliques.append(clique)
        active -= clique
    return best_iset, cliques


def is_removal(graph: Graph) -> tuple[set[Node], list[set[Node]]]:
    """Approximate a maximum clique (algorithm ISRemoval, paper Fig. 9).

    Returns ``(clique, independent_sets)`` where the independent sets
    partition the vertex set.
    """
    order = {node: i for i, node in enumerate(graph.nodes())}
    active = set(graph.nodes())
    best_clique: set[Node] = set()
    isets: list[set[Node]] = []
    while active:
        clique, iset = ramsey(graph, within=active, order=order)
        if len(clique) > len(best_clique):
            best_clique = clique
        isets.append(iset)
        active -= iset
    return best_clique, isets
