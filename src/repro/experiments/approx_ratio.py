"""EXP-AR — empirical approximation ratios (beyond the paper's tables).

Theorem 5.1 guarantees the algorithms are within
``O(log²(n1·n2)/(n1·n2))`` of the optimum — a weak worst-case bound.  This
experiment measures the *actual* gap: on random instances small enough for
the exact product-graph clique solvers, it reports the distribution of
``approx quality / optimal quality`` per algorithm, alongside the
theoretical floor ``log²(n1·n2)/(n1·n2)`` for the instance size.

The paper never reports this (it has no exact baseline); the measurement
substantiates its remark that the algorithms "seldom demonstrated their
worst-case complexity" on the quality side as well.

Run: ``python -m repro.experiments.approx_ratio [--instances 40]``
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass

from repro.core.comp_max_card import comp_max_card, comp_max_card_injective
from repro.core.comp_max_sim import comp_max_sim
from repro.core.exact import exact_comp_max_card, exact_comp_max_sim
from repro.core.naive import naive_comp_max_card
from repro.experiments.report import render_table
from repro.graph.generators import random_digraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.rng import derive_rng

__all__ = ["RatioSummary", "measure_ratios", "render", "main"]

XI = 0.5


@dataclass
class RatioSummary:
    """Ratio distribution of one algorithm over the instance set."""

    algorithm: str
    mean: float
    minimum: float
    fraction_optimal: float
    theoretical_floor: float


def _instance(seed: int, n1: int, n2: int):
    rng = derive_rng(seed, "approx-ratio")
    g1 = random_digraph(n1, min(2 * n1, n1 * (n1 - 1)), rng)
    g2 = random_digraph(n2, min(3 * n2, n2 * (n2 - 1)), rng)
    mat = SimilarityMatrix()
    for v in g1.nodes():
        for u in g2.nodes():
            if rng.random() < 0.5:
                mat.set(v, u, round(rng.uniform(0.3, 1.0), 3))
    return g1, g2, mat


def measure_ratios(
    num_instances: int = 40,
    n1: int = 5,
    n2: int = 6,
    seed: int = 2010,
) -> list[RatioSummary]:
    """Measure approx/optimal quality ratios on random instances."""
    algorithms = [
        ("compMaxCard", comp_max_card, exact_comp_max_card, "card"),
        ("compMaxCard_1-1", comp_max_card_injective, None, "card_injective"),
        ("compMaxSim", comp_max_sim, exact_comp_max_sim, "sim"),
        ("naiveCompMaxCard", naive_comp_max_card, exact_comp_max_card, "card"),
    ]
    ratios: dict[str, list[float]] = {name: [] for name, *_ in algorithms}
    for index in range(num_instances):
        g1, g2, mat = _instance(seed + index, n1, n2)
        exact_card = exact_comp_max_card(g1, g2, mat, XI)
        exact_card_injective = exact_comp_max_card(g1, g2, mat, XI, injective=True)
        exact_sim = exact_comp_max_sim(g1, g2, mat, XI)
        for name, approx_fn, _, kind in algorithms:
            approx = approx_fn(g1, g2, mat, XI)
            if kind == "card":
                optimal, achieved = exact_card.qual_card, approx.qual_card
            elif kind == "card_injective":
                optimal, achieved = exact_card_injective.qual_card, approx.qual_card
            else:
                optimal, achieved = exact_sim.qual_sim, approx.qual_sim
            ratios[name].append(1.0 if optimal == 0.0 else achieved / optimal)

    product_size = n1 * n2
    floor = math.log2(product_size) ** 2 / product_size
    summaries = []
    for name, values in ratios.items():
        summaries.append(
            RatioSummary(
                algorithm=name,
                mean=sum(values) / len(values),
                minimum=min(values),
                fraction_optimal=sum(1 for r in values if r >= 1.0 - 1e-9) / len(values),
                theoretical_floor=floor,
            )
        )
    return summaries


def render(summaries: list[RatioSummary], num_instances: int) -> str:
    rows = [
        (
            s.algorithm,
            f"{s.mean:.3f}",
            f"{s.minimum:.3f}",
            f"{100 * s.fraction_optimal:.0f}%",
            f"{s.theoretical_floor:.3f}",
        )
        for s in summaries
    ]
    return render_table(
        f"Approximation ratios over {num_instances} random instances "
        "(achieved / optimal)",
        # The last column is log²(n1·n2)/(n1·n2) — the *scale* of the
        # Theorem 5.1 guarantee with its hidden constant dropped; measured
        # ratios sitting far above it is the expected picture.
        ["Algorithm", "mean", "min", "optimal hits", "bound scale"],
        rows,
    )


def main(argv: list[str] | None = None) -> list[RatioSummary]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instances", type=int, default=40)
    parser.add_argument("--n1", type=int, default=5)
    parser.add_argument("--n2", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2010)
    args = parser.parse_args(argv)
    summaries = measure_ratios(args.instances, args.n1, args.n2, args.seed)
    print(render(summaries, args.instances))
    return summaries


if __name__ == "__main__":
    main()
