"""Direct tests of the engine's capacity mechanism (used by compression)."""

import pytest

from repro.core.engine import comp_max_card_engine, greedy_match
from repro.core.workspace import MatchingWorkspace
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix


def _workspace(num_pattern: int, num_data: int, edges2=()):
    g1 = DiGraph.from_edges([], nodes=[f"v{i}" for i in range(num_pattern)])
    g2 = DiGraph.from_edges(edges2, nodes=[f"u{j}" for j in range(num_data)])
    mat = SimilarityMatrix()
    for i in range(num_pattern):
        for j in range(num_data):
            mat.set(f"v{i}", f"u{j}", 1.0)
    return MatchingWorkspace(g1, g2, mat, 0.5)


class TestCapacities:
    def test_capacity_limits_reuse(self):
        workspace = _workspace(3, 1)
        u0 = workspace.index2["u0"]
        pairs, _ = comp_max_card_engine(
            workspace, workspace.initial_good(), capacities={u0: 2}
        )
        assert len(pairs) == 2
        assert all(u == u0 for _, u in pairs)

    def test_capacity_one_equals_injective(self):
        workspace = _workspace(3, 2)
        capped, _ = comp_max_card_engine(
            workspace,
            workspace.initial_good(),
            capacities={u: 1 for u in range(2)},
        )
        injective, _ = comp_max_card_engine(
            workspace, workspace.initial_good(), injective=True
        )
        assert len(capped) == len(injective) == 2
        assert len({u for _, u in capped}) == 2

    def test_unlimited_capacity_matches_everyone(self):
        workspace = _workspace(4, 1)
        pairs, _ = comp_max_card_engine(
            workspace, workspace.initial_good(), capacities={0: 99}
        )
        assert len(pairs) == 4

    def test_branch_restores_capacity(self):
        """H- explores the world without (v, u): u's budget must be intact."""
        # Two pattern nodes, one data node of capacity 1: the best mapping
        # uses u0 exactly once regardless of which node takes it.
        workspace = _workspace(2, 1)
        sigma, iset = greedy_match(
            workspace, workspace.initial_good(), capacities={0: 1}
        )
        assert len(sigma) == 1
        assert iset  # the displaced pair lands in I

    def test_zero_capacity_blocks_node(self):
        workspace = _workspace(2, 2)
        pairs, _ = comp_max_card_engine(
            workspace,
            workspace.initial_good(),
            capacities={0: 0, 1: 2},
        )
        # u0 admits nobody after its first (capacity-exhausting) pick; the
        # engine still matches both pattern nodes through u1 when allowed.
        used = {u for _, u in pairs}
        assert 1 in used


class TestEngineEdgeCases:
    def test_single_pair(self):
        workspace = _workspace(1, 1)
        sigma, iset = greedy_match(workspace, workspace.initial_good())
        assert sigma == [(0, 0)]
        assert iset == [(0, 0)]

    def test_disconnected_pattern_all_matched(self):
        workspace = _workspace(3, 3)
        pairs, stats = comp_max_card_engine(workspace, workspace.initial_good())
        assert len(pairs) == 3
        assert stats["rounds"] >= 1

    def test_conflicting_edges_resolved_by_removal_loop(self):
        # Pattern a->b, but the only data pair order is wrong for one side:
        # the engine's I-removal must still converge to the best 1 node.
        g1 = DiGraph.from_edges([("a", "b")])
        g2 = DiGraph.from_edges([("y", "x")])  # path exists y ~> x only
        mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0, ("b", "y"): 1.0})
        workspace = MatchingWorkspace(g1, g2, mat, 0.5)
        pairs, _ = comp_max_card_engine(workspace, workspace.initial_good())
        assert len(pairs) == 1  # a->x and b->y conflict; only one survives
