"""Concurrent writers sharing one store directory.

The sharded cluster points every shard worker — possibly in different
*processes* — at one warm store directory.  That is only sound because
store writes are atomic (tmp file + ``os.replace``) and content-
addressed: two shards warming the same fingerprint at once must leave
exactly one valid payload and no debris, never a torn file.  These
tests simulate that deployment with real forked processes and with
in-process services racing on one directory.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.core.prepared import PreparedDataGraph, prepare_data_graph
from repro.core.service import MatchingService
from repro.core.store import STORE_SUFFIX, PreparedIndexStore
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.generators import random_digraph

WRITES_PER_PROCESS = 8


def build_graph(seed: int = 23, nodes: int = 120, edges: int = 360) -> DiGraph:
    return random_digraph(nodes, edges, random.Random(seed), name="shared")


def _warm_repeatedly(store_dir: str, seed: int, barrier, failures) -> None:
    """One simulated shard process: build and save the same index."""
    try:
        graph = build_graph(seed)
        store = PreparedIndexStore(store_dir)
        prepared = prepare_data_graph(graph)
        barrier.wait(timeout=30)  # maximise write overlap
        for _ in range(WRITES_PER_PROCESS):
            store.save(prepared)
    except BaseException as exc:  # pragma: no cover - failure reporting
        failures.put(repr(exc))
        raise


class TestMultiProcessWriters:
    def test_two_processes_warming_one_fingerprint(self, tmp_path):
        graph = build_graph()
        fingerprint = graph_fingerprint(graph)
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        failures = context.Queue()
        workers = [
            context.Process(
                target=_warm_repeatedly,
                args=(str(tmp_path), 23, barrier, failures),
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)
        assert failures.empty()

        # Exactly one payload file survives, and no tmp debris.
        stored = sorted(path.name for path in tmp_path.iterdir())
        assert stored == [f"{fingerprint}{STORE_SUFFIX}"]

        # The surviving file is valid and bit-identical to a local build.
        store = PreparedIndexStore(tmp_path)
        loaded = store.load(fingerprint, graph)
        assert loaded is not None
        local = prepare_data_graph(graph)
        assert loaded.from_mask == local.from_mask
        assert loaded.to_mask == local.to_mask
        assert loaded.cycle_mask == local.cycle_mask

    def test_interleaved_distinct_fingerprints(self, tmp_path):
        # Two processes warming *different* graphs into one directory:
        # both payloads must land intact (no cross-file interference).
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        failures = context.Queue()
        workers = [
            context.Process(
                target=_warm_repeatedly,
                args=(str(tmp_path), seed, barrier, failures),
            )
            for seed in (23, 29)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)
        assert failures.empty()
        store = PreparedIndexStore(tmp_path)
        assert len(store) == 2
        for seed in (23, 29):
            graph = build_graph(seed)
            assert store.load(graph_fingerprint(graph), graph) is not None


class TestInProcessSharedStore:
    def test_thread_racing_services_one_directory(self, tmp_path):
        """Two in-process services (think: two shard workers) racing."""
        import threading

        graph = build_graph(31)
        fingerprint = graph_fingerprint(graph)
        services = [
            MatchingService(store_dir=str(tmp_path)) for _ in range(2)
        ]
        start = threading.Barrier(2)
        prepared: list[PreparedDataGraph | None] = [None, None]

        def warm(slot: int) -> None:
            start.wait(timeout=30)
            prepared[slot] = services[slot].prepared_for(graph.copy())

        threads = [
            threading.Thread(target=warm, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(p is not None for p in prepared)
        assert list(prepared[0].from_mask) == list(prepared[1].from_mask)
        # Exactly one payload, no tmp debris.  (An ``mmap``-backend
        # service that lost the persist race may have verified the
        # winner's file already, leaving a ``.ok`` sidecar — that is
        # bookkeeping, not a payload.)
        stored = sorted(path.name for path in tmp_path.iterdir())
        payloads = [name for name in stored if name.endswith(STORE_SUFFIX)]
        assert payloads == [f"{fingerprint}{STORE_SUFFIX}"]
        assert all(".tmp." not in name for name in stored)
        cold = MatchingService(store_dir=str(tmp_path))
        cold.prepared_for(graph)
        snap = cold.stats.snapshot()
        assert snap["disk_hits"] == 1 and snap["prepares"] == 0
