"""The repro-lint engine: files, findings, waivers, and the runner.

A :class:`Rule` inspects parsed source files and yields :class:`Finding`
objects.  The engine owns everything rule-independent: walking the
target paths, parsing, attaching parent links and qualified names to
AST nodes, honoring inline waiver comments, applying a baseline
suppression file, and assembling the final :class:`Report`.

Inline waivers take the form::

    self.solved_by[name] = ...  # repro-lint: ignore[RL002] -- reason

and suppress the named rules (or ``*`` for all) on that physical line;
a waiver on a comment-only line applies to the next line instead.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_WAIVER_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9*,\s]+)\]")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class UsageError(Exception):
    """Bad invocation (unknown rule id, missing path): CLI exit code 2."""


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line.

    ``symbol`` is the enclosing ``Class.method`` qualname and ``snippet``
    the stripped source line — together with the rule id and path they
    form the baseline key, which survives unrelated line drift.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    symbol: str
    snippet: str

    def key(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.symbol, self.snippet)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.symbol}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ParsedFile:
    """One source file: text, AST (with parent links), and waivers."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    waivers: dict[int, set[str]] = field(default_factory=dict)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "ParsedFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        pf = cls(path=path, rel=rel, source=source, lines=source.splitlines(), tree=tree)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                pf.parents[child] = parent
        pf.waivers = _parse_waivers(pf.lines)
        return pf

    def qualname(self, node: ast.AST) -> str:
        """``Class.method`` (or ``<module>``) for the scope enclosing ``node``."""
        names: list[str] = []
        cursor: ast.AST | None = node
        while cursor is not None:
            if isinstance(cursor, _SCOPE_NODES):
                names.append(cursor.name)
            cursor = self.parents.get(cursor)
        return ".".join(reversed(names)) or "<module>"

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def waived(self, lineno: int, rule: str) -> bool:
        rules = self.waivers.get(lineno)
        return bool(rules) and ("*" in rules or rule in rules)


def _parse_waivers(lines: Sequence[str]) -> dict[int, set[str]]:
    waivers: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        match = _WAIVER_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = idx + 1 if line.lstrip().startswith("#") else idx
        waivers.setdefault(target, set()).update(rules)
    return waivers


class Project:
    """Every parsed file of one run, plus a cross-file class index."""

    def __init__(self, files: list[ParsedFile]) -> None:
        self.files = files
        self._classes: dict[str, tuple[ast.ClassDef, ParsedFile]] | None = None

    def classes(self) -> dict[str, tuple[ast.ClassDef, ParsedFile]]:
        """Class name -> (ClassDef, file); later files win duplicate names."""
        if self._classes is None:
            index: dict[str, tuple[ast.ClassDef, ParsedFile]] = {}
            for pf in self.files:
                for node in ast.walk(pf.tree):
                    if isinstance(node, ast.ClassDef):
                        index[node.name] = (node, pf)
            self._classes = index
        return self._classes


class Rule:
    """Base class for repro-lint rules.

    Subclasses set ``rule_id``/``title``/``hint`` and the posix path
    suffixes the rule applies to (empty = every scanned file), then
    implement :meth:`check_file` and/or :meth:`check_project`.
    """

    rule_id: str = "RL000"
    title: str = ""
    hint: str = ""
    default_paths: tuple[str, ...] = ()

    def applies_to(self, pf: ParsedFile) -> bool:
        if not self.default_paths:
            return True
        posix = pf.path.as_posix()
        return any(posix.endswith(suffix) or f"/{suffix}" in posix for suffix in self.default_paths)

    def check_file(self, pf: ParsedFile, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        pf: ParsedFile,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=pf.rel,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
            symbol=pf.qualname(node),
            snippet=pf.line_text(lineno),
        )


@dataclass
class Report:
    """The outcome of one run: findings plus suppression accounting."""

    findings: list[Finding]
    files: list[str]
    rules: list[Rule]
    waived: int = 0
    baselined: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def to_json(self) -> dict:
        return {
            "version": 1,
            "tool": "repro-lint",
            "rules": [
                {"id": rule.rule_id, "title": rule.title} for rule in self.rules
            ],
            "files_scanned": len(self.files),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": {"waiver": self.waived, "baseline": self.baselined},
            "parse_errors": self.parse_errors,
            "exit_code": self.exit_code,
        }


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise UsageError(f"no such path: {path}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") for part in candidate.parts):
                continue
            yield candidate


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(paths: Sequence[str | Path]) -> tuple[Project, list[str]]:
    """Parse every ``.py`` under ``paths``; syntax errors are reported, not fatal."""
    files: list[ParsedFile] = []
    errors: list[str] = []
    seen: set[Path] = set()
    for path in _iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        rel = _relpath(path)
        try:
            files.append(ParsedFile.parse(path, rel))
        except SyntaxError as exc:
            errors.append(f"{rel}:{exc.lineno or 0}: syntax error: {exc.msg}")
    return Project(files), errors


def run_analysis(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule],
    select: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
    baseline: set[tuple[str, str, str, str]] | None = None,
    restrict_paths: bool = True,
) -> Report:
    """Run ``rules`` over ``paths`` and return the suppressed-and-sorted report.

    ``restrict_paths=False`` applies every rule to every file regardless
    of its ``default_paths`` — used by the fixture tests, which exercise
    rules against snippets that live outside the production tree.
    """
    known = {rule.rule_id for rule in rules}
    for group in (select, disable):
        for rule_id in group or ():
            if rule_id not in known:
                raise UsageError(f"unknown rule id: {rule_id}")
    active = [
        rule
        for rule in rules
        if (select is None or rule.rule_id in set(select))
        and rule.rule_id not in set(disable or ())
    ]

    project, parse_errors = load_project(paths)
    raw: list[Finding] = []
    for rule in active:
        for pf in project.files:
            if restrict_paths and not rule.applies_to(pf):
                continue
            raw.extend(rule.check_file(pf, project))
        raw.extend(rule.check_project(project))

    by_rel = {pf.rel: pf for pf in project.files}
    findings: list[Finding] = []
    waived = 0
    baselined = 0
    for finding in raw:
        pf = by_rel.get(finding.path)
        if pf is not None and pf.waived(finding.line, finding.rule):
            waived += 1
            continue
        if baseline and finding.key() in baseline:
            baselined += 1
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(
        findings=findings,
        files=[pf.rel for pf in project.files],
        rules=list(active),
        waived=waived,
        baselined=baselined,
        parse_errors=parse_errors,
    )
