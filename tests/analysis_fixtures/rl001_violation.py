"""RL001 true positives: blocking work lexically inside lock blocks.

Parsed by the analyzer tests, never imported or executed.
"""

import mmap
import time


class Cache:
    def get(self, key, store, graph):
        with self._lock:
            value = store.load(key)  # store I/O under the cache lock
            time.sleep(0.1)  # sleeping with the lock held
            sub = graph.subgraph([1, 2])  # O(|shard|) build under the lock
        return value, sub

    def persist(self, key, store, path):
        with self.stats.lock:
            store.save(key, b"payload")  # disk write under the stats lock
            handle = open(path, "rb")  # raw file open under a lock
            mapped = mmap.mmap(handle.fileno(), 0)  # mapping under a lock
        return mapped

    def wait(self, future):
        with self._lock:
            return future.result()  # future wait serializes every caller
