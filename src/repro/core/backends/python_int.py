"""The reference backend: candidate masks as Python arbitrary-precision ints.

This is the seed implementation's representation, extracted verbatim from
the engine's inner loops: a matching list is a ``dict`` from pattern-node
index to a ``[good, minus]`` pair of big-int bitmasks, and every
operation is the exact expression the pre-backend engine inlined.  It is
the semantic reference every other backend must match bit-for-bit, and
the default (``REPRO_BACKEND=python``).

The dict operations live as module-level ``*_entries`` functions because
they are the *shared semantics*, not just this backend's: the numpy
backend delegates to them for its small-list mode, so a future fix here
fixes every backend's dict regime at once (bit-identity by construction,
not by parallel maintenance).

Big ints are a surprisingly strong baseline — CPython's ``int.bit_count``
and bitwise ops run in C over 30-bit limbs — but every engine loop over
the matching list (the popcount scan of line 2, the capacity sweep, the
``H⁺``/``H⁻`` partition) steps through a Python-level dict.  The numpy
backend exists to collapse those per-row loops into whole-matrix kernels.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.backends.base import MatchingList, SolverBackend

__all__ = [
    "PythonIntBackend",
    "PythonMatchingList",
    "pick_node_entries",
    "pick_candidate_entries",
    "settle_entries",
    "exhaust_entries",
    "trim_entries",
    "partition_entries",
]

Entries = dict[int, list[int]]


# ----------------------------------------------------------------------
# The reference dict-of-big-ints operations (shared across backends)
# ----------------------------------------------------------------------
def pick_node_entries(entries: Entries) -> int:
    """Maximal good list, deterministic tie-break on the smaller index."""
    v = -1
    best_count = 0
    for cand_v, masks in entries.items():
        count = masks[0].bit_count()
        if count > best_count or (count == best_count and cand_v < v):
            v, best_count = cand_v, count
    return v


def pick_candidate_entries(entries: Entries, v: int, pref: Sequence[int] | None) -> int:
    good_v = entries[v][0]
    if pref is not None:
        for cand_u in pref:
            if good_v >> cand_u & 1:
                return cand_u
    # Arbitrary pick, or a good bit with no similarity row — callers of
    # comp_max_card_engine may seed candidates beyond the workspace's
    # mat ≥ ξ pairs (restricted or partitioned groups), so the
    # preference scan can come up empty on a nonempty mask.
    return (good_v & -good_v).bit_length() - 1  # lowest set bit


def settle_entries(entries: Entries, v: int, u: int) -> None:
    masks = entries[v]
    good_v = masks[0]
    masks[0] = 0
    masks[1] = good_v & ~(1 << u)


def exhaust_entries(entries: Entries, u: int, v: int) -> None:
    u_bit = 1 << u
    for other_v, masks in entries.items():
        if other_v != v and masks[0] >> u & 1:
            masks[0] &= ~u_bit
            masks[1] |= u_bit


def trim_entries(entries: Entries, neighbors: Sequence[int], v: int, mask: int) -> None:
    """One trimMatching side: AND ``v``'s present neighbors with ``mask``."""
    for neighbor in neighbors:
        masks = entries.get(neighbor)
        if masks is not None and neighbor != v:
            bad = masks[0] & ~mask
            if bad:
                masks[0] &= mask
                masks[1] |= bad


def partition_entries(entries: Entries) -> tuple[Entries, Entries]:
    h_plus: Entries = {}
    h_minus: Entries = {}
    for node, (good, minus) in entries.items():
        if good:
            h_plus[node] = [good, 0]
        if minus:
            h_minus[node] = [minus, 0]
    return h_plus, h_minus


class _PythonContext:
    """Engine context: plain references into the workspace's tables."""

    __slots__ = ("from_rows", "to_rows", "prev", "post")

    def __init__(
        self,
        from_rows: Sequence[int],
        to_rows: Sequence[int],
        prev: Sequence[Sequence[int]],
        post: Sequence[Sequence[int]],
    ) -> None:
        self.from_rows = from_rows
        self.to_rows = to_rows
        self.prev = prev
        self.post = post


class PythonMatchingList(MatchingList):
    """``H`` as ``{v: [good_int, minus_int]}`` — today's exact semantics."""

    __slots__ = ("entries", "ctx")

    def __init__(self, entries: Entries, ctx: _PythonContext) -> None:
        self.entries = entries
        self.ctx = ctx

    def is_empty(self) -> bool:
        return not self.entries

    def pick_node(self) -> int:
        return pick_node_entries(self.entries)

    def pick_candidate(self, v: int, pref: Sequence[int] | None) -> int:
        return pick_candidate_entries(self.entries, v, pref)

    def settle(self, v: int, u: int) -> None:
        settle_entries(self.entries, v, u)

    def exhaust(self, u: int, v: int) -> None:
        exhaust_entries(self.entries, u, v)

    def trim(self, v: int, u: int) -> None:
        ctx = self.ctx
        trim_entries(self.entries, ctx.prev[v], v, ctx.to_rows[u])
        trim_entries(self.entries, ctx.post[v], v, ctx.from_rows[u])

    def partition(self) -> tuple["PythonMatchingList", "PythonMatchingList"]:
        h_plus, h_minus = partition_entries(self.entries)
        return (
            PythonMatchingList(h_plus, self.ctx),
            PythonMatchingList(h_minus, self.ctx),
        )

    def to_masks(self) -> dict[int, tuple[int, int]]:
        return {v: (masks[0], masks[1]) for v, masks in self.entries.items()}


class PythonIntBackend(SolverBackend):
    """Today's semantics on Python big ints; the default backend."""

    name = "python"

    def build_rows(
        self, from_mask: Sequence[int], to_mask: Sequence[int], num_bits: int
    ) -> tuple[Sequence[int], Sequence[int]]:
        # Big ints *are* the native layout: share the rows by reference.
        return (from_mask, to_mask)

    def evolve_rows(
        self,
        rows: tuple[Sequence[int], Sequence[int]],
        from_mask: Sequence[int],
        to_mask: Sequence[int],
        num_bits: int,
        dirty: Sequence[int],
    ) -> tuple[Sequence[int], Sequence[int]]:
        # The evolved big-int lists are already the native layout.
        return (from_mask, to_mask)

    def build_context(self, workspace) -> _PythonContext:
        return _PythonContext(
            workspace.from_mask, workspace.to_mask, workspace.prev, workspace.post
        )

    def matching_list(
        self, top_good: dict[int, int], context: _PythonContext
    ) -> PythonMatchingList:
        return PythonMatchingList(
            {v: [mask, 0] for v, mask in top_good.items() if mask}, context
        )
