"""Tests for the WIS/clique substrate: Ramsey, removal algorithms, weighted,
exact solvers, greedy heuristics — including cross-validation against exact."""

import random

import pytest

from repro.graph.undirected import Graph
from repro.utils.errors import TimeBudgetExceeded
from repro.utils.timing import Deadline
from repro.wis.exact import (
    max_clique,
    max_independent_set,
    max_weight_clique,
    max_weight_independent_set,
)
from repro.wis.greedy import (
    greedy_clique,
    greedy_independent_set,
    greedy_weighted_independent_set,
)
from repro.wis.ramsey import ramsey
from repro.wis.removal import clique_removal, is_removal
from repro.wis.weighted import weight_group_index, weight_groups, weighted_independent_set


def random_graph(n: int, p: float, seed: int, weighted: bool = False) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    for i in range(n):
        graph.add_node(i, weight=rng.uniform(0.1, 10.0) if weighted else 1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


class TestRamsey:
    def test_empty_graph(self):
        assert ramsey(Graph()) == (set(), set())

    def test_single_node(self):
        graph = Graph()
        graph.add_node(1)
        clique, iset = ramsey(graph)
        assert clique == {1} and iset == {1}

    def test_triangle(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        clique, iset = ramsey(graph)
        assert clique == {1, 2, 3}
        assert len(iset) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_outputs_always_valid(self, seed):
        graph = random_graph(30, 0.3, seed)
        clique, iset = ramsey(graph)
        assert graph.is_clique(clique)
        assert graph.is_independent_set(iset)
        assert clique and iset

    def test_restricted_to_subset(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (3, 4)])
        clique, iset = ramsey(graph, within={1, 3})
        assert clique <= {1, 3} and iset <= {1, 3}

    def test_large_path_no_stack_overflow(self):
        graph = Graph.from_edges([(i, i + 1) for i in range(5000)])
        clique, iset = ramsey(graph)
        assert graph.is_independent_set(iset)
        assert len(iset) >= 1000  # a path has a huge independent set


class TestRemoval:
    @pytest.mark.parametrize("seed", range(6))
    def test_clique_removal_partitions_and_validates(self, seed):
        graph = random_graph(25, 0.3, seed)
        iset, cliques = clique_removal(graph)
        assert graph.is_independent_set(iset)
        union = set()
        for clique in cliques:
            assert graph.is_clique(clique)
            assert not (union & clique)  # disjoint
            union |= clique
        assert union == set(graph.nodes())  # clique cover partitions V

    @pytest.mark.parametrize("seed", range(6))
    def test_is_removal_dual(self, seed):
        graph = random_graph(25, 0.3, seed)
        clique, isets = is_removal(graph)
        assert graph.is_clique(clique)
        union = set()
        for iset in isets:
            assert graph.is_independent_set(iset)
            assert not (union & iset)
            union |= iset
        assert union == set(graph.nodes())

    def test_duality_via_complement(self):
        """ISRemoval on G finds cliques == CliqueRemoval on G^c finds ISs."""
        graph = random_graph(15, 0.4, 42)
        clique, _ = is_removal(graph)
        iset_on_complement, _ = clique_removal(graph.complement())
        assert graph.is_clique(iset_on_complement)
        assert len(clique) == len(iset_on_complement)

    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_trivial(self, seed):
        graph = random_graph(20, 0.5, seed)
        iset, _ = clique_removal(graph)
        assert len(iset) >= 1


class TestExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_max_clique_at_least_approximation(self, seed):
        graph = random_graph(18, 0.4, seed)
        exact = max_clique(graph)
        approx, _ = is_removal(graph)
        assert graph.is_clique(exact)
        assert len(exact) >= len(approx)

    @pytest.mark.parametrize("seed", range(8))
    def test_max_independent_set_vs_clique_on_complement(self, seed):
        graph = random_graph(14, 0.4, seed)
        direct = max_independent_set(graph)
        via_complement = max_clique(graph.complement())
        assert graph.is_independent_set(direct)
        assert len(direct) == len(via_complement)

    def test_known_graph(self):
        # Two triangles sharing a node: max clique 3, max IS 2 (one per triangle,
        # avoiding the shared node).
        graph = Graph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)])
        assert len(max_clique(graph)) == 3
        assert len(max_independent_set(graph)) == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_weighted_exact_dominates_unweighted_count(self, seed):
        graph = random_graph(14, 0.4, seed, weighted=True)
        heavy = max_weight_independent_set(graph)
        assert graph.is_independent_set(heavy)
        # Weighted optimum weighs at least as much as the unweighted optimum.
        unweighted = max_independent_set(graph)
        assert graph.total_weight(heavy) >= graph.total_weight(unweighted) - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_weight_clique_vs_enumeration(self, seed):
        graph = random_graph(10, 0.5, seed, weighted=True)
        best = max_weight_clique(graph)
        assert graph.is_clique(best)
        # brute-force verify on this small size
        import itertools

        nodes = list(graph.nodes())
        best_brute = 0.0
        for r in range(1, len(nodes) + 1):
            for combo in itertools.combinations(nodes, r):
                if graph.is_clique(combo):
                    best_brute = max(best_brute, graph.total_weight(combo))
        assert graph.total_weight(best) == pytest.approx(best_brute)

    def test_deadline_raises_with_incumbent(self):
        graph = random_graph(60, 0.7, 0)
        deadline = Deadline(1e-6)
        with pytest.raises(TimeBudgetExceeded):
            max_clique(graph, deadline)

    def test_empty_graph_everything(self):
        empty = Graph()
        assert max_clique(empty) == set()
        assert max_independent_set(empty) == set()
        assert max_weight_clique(empty) == set()
        assert max_weight_independent_set(empty) == set()


class TestWeighted:
    def test_weight_group_index_boundaries(self):
        assert weight_group_index(8.0, 8.0, 4) == 1
        assert weight_group_index(4.1, 8.0, 4) == 1
        assert weight_group_index(4.0, 8.0, 4) == 2
        assert weight_group_index(2.0, 8.0, 4) == 3
        assert weight_group_index(0.001, 8.0, 4) == 4  # clamped into last group

    def test_weight_groups_drop_featherweights(self):
        graph = Graph()
        graph.add_node("heavy", weight=100.0)
        for i in range(9):
            graph.add_node(f"light{i}", weight=1.0)
        # cutoff = 100/10 = 10: all the 1.0 nodes are dropped.
        groups = weight_groups(graph)
        members = {node for group in groups for node in group}
        assert members == {"heavy"}

    @pytest.mark.parametrize("seed", range(6))
    def test_weighted_is_valid_and_not_terrible(self, seed):
        graph = random_graph(20, 0.3, seed, weighted=True)
        iset = weighted_independent_set(graph)
        assert graph.is_independent_set(iset)
        heaviest_node = max(graph.nodes(), key=graph.weight)
        assert graph.total_weight(iset) >= graph.weight(heaviest_node) - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_within_exact(self, seed):
        graph = random_graph(14, 0.4, seed, weighted=True)
        approx = weighted_independent_set(graph)
        exact = max_weight_independent_set(graph)
        assert graph.total_weight(approx) <= graph.total_weight(exact) + 1e-9

    def test_empty(self):
        assert weighted_independent_set(Graph()) == set()


class TestGreedy:
    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_outputs_valid(self, seed):
        graph = random_graph(20, 0.4, seed, weighted=True)
        assert graph.is_independent_set(greedy_independent_set(graph))
        assert graph.is_clique(greedy_clique(graph))
        assert graph.is_independent_set(greedy_weighted_independent_set(graph))

    def test_greedy_is_maximal(self):
        graph = random_graph(20, 0.3, 7)
        iset = greedy_independent_set(graph)
        for node in graph.nodes():
            if node not in iset:
                assert graph.neighbors(node) & iset, "greedy IS must be maximal"
