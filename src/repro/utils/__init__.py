"""Shared utilities: errors, seeded randomness, timing helpers."""

from repro.utils.errors import GraphError, InputError, TimeBudgetExceeded
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.timing import Stopwatch, Deadline

__all__ = [
    "GraphError",
    "InputError",
    "TimeBudgetExceeded",
    "derive_rng",
    "derive_seed",
    "Stopwatch",
    "Deadline",
]
