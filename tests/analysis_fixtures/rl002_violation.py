"""RL002 true positives: counter writes and snapshot reads off the stats lock.

Parsed by the analyzer tests, never imported or executed.
"""


class Service:
    def bump(self):
        self.stats.cache_hits += 1  # write outside the stats lock

    def credit(self, name):
        self.stats.solved_by[name] = 1  # dict-counter store outside the lock

    def reset(self, stats):
        stats.calls = 0  # bare stats receiver, still a counter write


class ServiceStats:
    def snapshot(self):
        return {"calls": self.calls}  # torn read: no lock held
