"""Tests for the extension features: bounded simulation and the
approximation-ratio experiment."""

import pytest

from repro.baselines.bounded_simulation import (
    bounded_simulates,
    bounded_simulation,
)
from repro.baselines.simulation import graph_simulation
from repro.experiments.approx_ratio import measure_ratios, render
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph
from repro.similarity.labels import label_equality_matrix
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError

from helpers import make_random_instance


class TestBoundedSimulation:
    @pytest.fixture
    def stretched(self):
        g1 = DiGraph.from_edges([("a", "b")], labels={"a": "A", "b": "B"})
        g2 = DiGraph.from_edges(
            [("x", "m"), ("m", "y")], labels={"x": "A", "m": "M", "y": "B"}
        )
        return g1, g2, label_equality_matrix(g1, g2)

    def test_k_gates_the_match(self, stretched):
        g1, g2, mat = stretched
        assert not bounded_simulates(g1, g2, mat, 0.5, max_hops=1)
        assert bounded_simulates(g1, g2, mat, 0.5, max_hops=2)

    @pytest.mark.parametrize("seed", range(12))
    def test_k1_equals_classical_simulation(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=5, n2=6)
        classical = graph_simulation(g1, g2, mat, 0.5).relation
        bounded = bounded_simulation(g1, g2, mat, 0.5, max_hops=1).relation
        assert bounded == classical

    @pytest.mark.parametrize("seed", range(8))
    def test_relation_monotone_in_k(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=5, n2=7)
        previous = None
        for k in (1, 2, 4):
            current = bounded_simulation(g1, g2, mat, 0.5, max_hops=k).relation
            if previous is not None:
                for v in current:
                    assert previous[v] <= current[v], (v, k)
            previous = current

    @pytest.mark.parametrize("seed", range(8))
    def test_relation_is_a_valid_bounded_simulation(self, seed):
        """Post-condition check: every surviving pair satisfies the definition."""
        from repro.core.bounded import bounded_reachability_masks

        k = 2
        g1, g2, mat = make_random_instance(seed, n1=4, n2=6)
        result = bounded_simulation(g1, g2, mat, 0.5, max_hops=k)
        order2 = list(g2.nodes())
        position = {u: i for i, u in enumerate(order2)}
        within = bounded_reachability_masks(g2, k, order2)
        for v, simulators in result.relation.items():
            for u in simulators:
                assert mat(v, u) >= 0.5
                for v_next in g1.successors(v):
                    mask = sum(1 << position[w] for w in result.relation[v_next])
                    assert within[position[u]] & mask, (v, u, v_next)

    def test_cycle_patterns_need_cycles(self):
        g1 = cycle_graph(2)
        g2_line = path_graph(3)
        mat = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2_line.nodes():
                mat.set(v, u, 1.0)
        assert not bounded_simulates(g1, g2_line, mat, 0.5, max_hops=3)
        g2_cycle = cycle_graph(4)
        mat2 = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2_cycle.nodes():
                mat2.set(v, u, 1.0)
        assert bounded_simulates(g1, g2_cycle, mat2, 0.5, max_hops=1)

    def test_validation(self):
        g1, g2, mat = make_random_instance(0)
        with pytest.raises(InputError):
            bounded_simulation(g1, g2, mat, 0.5, max_hops=0)

    def test_empty_pattern(self):
        result = bounded_simulation(DiGraph(), path_graph(2), SimilarityMatrix(), 0.5, 2)
        assert result.total
        assert result.coverage == 1.0


class TestApproxRatio:
    @pytest.fixture(scope="class")
    def summaries(self):
        return measure_ratios(num_instances=8, n1=4, n2=5, seed=3)

    def test_all_algorithms_summarised(self, summaries):
        names = {s.algorithm for s in summaries}
        assert names == {
            "compMaxCard",
            "compMaxCard_1-1",
            "compMaxSim",
            "naiveCompMaxCard",
        }

    def test_ratios_in_unit_interval(self, summaries):
        for s in summaries:
            assert 0.0 <= s.minimum <= s.mean <= 1.0 + 1e-9
            assert 0.0 <= s.fraction_optimal <= 1.0

    def test_ratios_far_above_worst_case_scale(self, summaries):
        for s in summaries:
            assert s.mean >= 0.5  # empirically near-optimal on small instances

    def test_render(self, summaries):
        text = render(summaries, 8)
        assert "Approximation ratios" in text
        assert "compMaxCard" in text
