"""MinHash sketches for shingle resemblance at scale.

Broder's syntactic-clustering paper (the paper's reference [8]) pairs
w-shingling with *min-wise hashing*: the resemblance of two shingle sets
is estimated by the agreement rate of their per-permutation minima, so a
page is summarised by a constant-size sketch instead of its full shingle
set.  For paper-scale archives (20k pages per site, 11 versions) exact
pairwise resemblance is the dominant cost of building ``mat()``; sketches
make it linear in the number of compared pairs with O(k) work each.

The estimator is unbiased with standard error ~ 1/√k; the default k = 128
keeps it under 0.09, comfortably finer than the experiments' ξ grid.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.similarity.shingles import CONTENT_ATTR, DEFAULT_SHINGLE_WIDTH, shingle_set
from repro.utils.errors import InputError
from repro.utils.rng import derive_seed

__all__ = ["MinHasher", "minhash_similarity_matrix"]

Node = Hashable

_MERSENNE = (1 << 61) - 1  # modulus for the universal hash family


class MinHasher:
    """A fixed family of k min-wise hash functions over shingles."""

    def __init__(self, num_hashes: int = 128, seed: int = 2010) -> None:
        if num_hashes < 1:
            raise InputError("num_hashes must be at least 1")
        self.num_hashes = num_hashes
        self.seed = seed
        # Universal hashing: h_i(x) = (a_i * x + b_i) mod p, with fixed
        # per-index coefficients derived from the seed.
        self._coefficients = [
            (
                derive_seed(seed, "minhash-a", i) % (_MERSENNE - 1) + 1,
                derive_seed(seed, "minhash-b", i) % _MERSENNE,
            )
            for i in range(num_hashes)
        ]

    def sketch(self, tokens: Sequence[str], width: int = DEFAULT_SHINGLE_WIDTH) -> tuple[int, ...]:
        """The MinHash sketch of a document's shingle set.

        An empty document yields the all-sentinel sketch, which estimates
        similarity 1.0 against other empty documents and ~0 otherwise —
        consistent with :func:`repro.similarity.shingles.resemblance`.
        """
        shingles = shingle_set(tokens, width)
        if not shingles:
            return tuple([_MERSENNE] * self.num_hashes)
        hashed = [hash(shingle) & ((1 << 61) - 1) for shingle in shingles]
        sketch = []
        for a, b in self._coefficients:
            sketch.append(min((a * value + b) % _MERSENNE for value in hashed))
        return tuple(sketch)

    def estimate(self, sketch1: Sequence[int], sketch2: Sequence[int]) -> float:
        """Estimated Jaccard resemblance: fraction of agreeing minima."""
        if len(sketch1) != self.num_hashes or len(sketch2) != self.num_hashes:
            raise InputError("sketch lengths do not match this hasher")
        agreements = sum(1 for x, y in zip(sketch1, sketch2) if x == y)
        return agreements / self.num_hashes


def minhash_similarity_matrix(
    graph1: DiGraph,
    graph2: DiGraph,
    num_hashes: int = 128,
    width: int = DEFAULT_SHINGLE_WIDTH,
    content_attr: str = CONTENT_ATTR,
    min_score: float = 0.0,
    seed: int = 2010,
) -> SimilarityMatrix:
    """Sketch-based replacement for ``shingle_similarity_matrix``.

    Sketches every node once, then estimates all pairwise resemblances.
    Candidate pairs are restricted by a one-band LSH pass (pairs must agree
    on at least one minimum) so wholly dissimilar pairs are never scored.
    """
    hasher = MinHasher(num_hashes, seed)
    sketches2: dict[Node, tuple[int, ...]] = {
        u: hasher.sketch(graph2.attrs(u).get(content_attr, ()), width)
        for u in graph2.nodes()
    }
    # LSH buckets: (hash index, minimum) -> data nodes.
    buckets: dict[tuple[int, int], list[Node]] = {}
    for u, sketch in sketches2.items():
        for i, minimum in enumerate(sketch):
            buckets.setdefault((i, minimum), []).append(u)

    mat = SimilarityMatrix()
    for v in graph1.nodes():
        sketch_v = hasher.sketch(graph1.attrs(v).get(content_attr, ()), width)
        candidates: set[Node] = set()
        for i, minimum in enumerate(sketch_v):
            candidates.update(buckets.get((i, minimum), ()))
        for u in candidates:
            score = hasher.estimate(sketch_v, sketches2[u])
            if score > min_score:
                mat.set(v, u, score)
    return mat
