"""Tests for p-hom definitions: validity checking and quality metrics."""

import pytest

from repro.core.phom import PHomResult, check_phom_mapping, validate_threshold
from repro.core.quality import match_quality, qual_card, qual_sim
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError


@pytest.fixture
def small_instance():
    g1 = DiGraph.from_edges([("a", "b")])
    g2 = DiGraph.from_edges([("x", "m"), ("m", "y")])
    mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0, ("b", "y"): 0.8, ("b", "x"): 0.9})
    return g1, g2, mat


class TestChecker:
    def test_valid_edge_to_path_mapping(self, small_instance):
        g1, g2, mat = small_instance
        violations = check_phom_mapping(g1, g2, {"a": "x", "b": "y"}, mat, 0.5)
        assert violations == []

    def test_similarity_violation(self, small_instance):
        g1, g2, mat = small_instance
        violations = check_phom_mapping(g1, g2, {"a": "x", "b": "y"}, mat, 0.9)
        assert any(v.kind == "similarity" for v in violations)

    def test_edge_violation_no_path(self, small_instance):
        g1, g2, mat = small_instance
        # b -> x: but there is no path x ~> x for the edge (a, b)... actually
        # a->x, b->x violates the edge since there is no nonempty path x ~> x.
        violations = check_phom_mapping(g1, g2, {"a": "x", "b": "x"}, mat, 0.5)
        assert any(v.kind == "edge" for v in violations)

    def test_injectivity_violation(self):
        g1 = DiGraph.from_edges([], nodes=["a", "b"])
        g2 = DiGraph.from_edges([], nodes=["x"])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0, ("b", "x"): 1.0})
        ok = check_phom_mapping(g1, g2, {"a": "x", "b": "x"}, mat, 0.5)
        assert ok == []  # fine as plain p-hom
        violations = check_phom_mapping(g1, g2, {"a": "x", "b": "x"}, mat, 0.5, injective=True)
        assert any(v.kind == "injectivity" for v in violations)

    def test_unknown_nodes_reported_first(self, small_instance):
        g1, g2, mat = small_instance
        violations = check_phom_mapping(g1, g2, {"ghost": "x"}, mat, 0.5)
        assert violations and all(v.kind == "node" for v in violations)

    def test_partial_mapping_ignores_boundary_edges(self, small_instance):
        g1, g2, mat = small_instance
        # Only 'b' matched: the edge (a, b) leaves the matched subgraph.
        assert check_phom_mapping(g1, g2, {"b": "x"}, mat, 0.5) == []

    def test_self_loop_requires_cycle(self):
        g1 = DiGraph.from_edges([("a", "a")])
        g2_line = DiGraph.from_edges([("x", "y")])
        g2_loop = DiGraph.from_edges([("x", "x")])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 1.0})
        assert any(
            v.kind == "edge"
            for v in check_phom_mapping(g1, g2_line, {"a": "x"}, mat, 0.5)
        )
        assert check_phom_mapping(g1, g2_loop, {"a": "x"}, mat, 0.5) == []

    def test_threshold_validation(self):
        with pytest.raises(InputError):
            validate_threshold(0.0)
        with pytest.raises(InputError):
            validate_threshold(1.5)
        validate_threshold(1.0)


class TestQuality:
    def test_qual_card(self):
        g1 = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert qual_card({"a": "x"}, g1) == pytest.approx(1 / 3)
        assert qual_card({}, g1) == 0.0
        assert qual_card({}, DiGraph()) == 1.0

    def test_qual_sim_weighted(self):
        """Example 3.3 numbers: σs captures (1*1 + 6*1) / 10 = 0.7."""
        g1 = DiGraph()
        for node, weight in [("A", 1.0), ("v1", 1.0), ("v2", 6.0), ("D", 1.0), ("E", 1.0)]:
            g1.add_node(node, weight=weight)
        mat = SimilarityMatrix.from_pairs(
            {("A", "A2"): 1.0, ("v2", "B2"): 1.0, ("v1", "B2"): 0.6,
             ("D", "D2"): 1.0, ("E", "E2"): 1.0}
        )
        sigma_s = {"A": "A2", "v2": "B2"}
        assert qual_sim(sigma_s, g1, mat) == pytest.approx(0.7)
        sigma_c = {"A": "A2", "v1": "B2", "D": "D2", "E": "E2"}
        assert qual_sim(sigma_c, g1, mat) == pytest.approx(3.6 / 10)

    def test_match_quality_combined(self):
        g1 = DiGraph.from_edges([], nodes=["a", "b"])
        mat = SimilarityMatrix.from_pairs({("a", "x"): 0.5})
        quality = match_quality({"a": "x"}, g1, mat)
        assert quality.card == 0.5
        assert quality.sim == pytest.approx(0.25)


class TestResult:
    def test_is_total(self):
        g1 = DiGraph.from_edges([("a", "b")])
        result = PHomResult({"a": "x", "b": "y"}, 1.0, 1.0)
        assert result.is_total(g1)
        assert PHomResult({"a": "x"}, 0.5, 0.5).is_total(g1) is False

    def test_matched_nodes(self):
        result = PHomResult({"a": "x"}, 1.0, 1.0)
        assert result.matched_nodes() == {"a"}
