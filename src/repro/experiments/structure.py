"""EXP-SB — the structure-blindness experiment (Section 2's criticism).

The paper's core argument against vertex-similarity matching:

    "One cannot match two sites with different navigational structures
    even if most of their pages can be matched pairwise."

This experiment makes that concrete.  For each site category it builds

* a **true match**: the site's skeleton vs the skeleton of its next
  archive version (ground-truth positive); and
* a **structural impostor**: the same skeleton nodes with the *same page
  contents* but a freshly randomised (DAG) link structure — every page
  still has a near-perfect content counterpart, yet the navigation is
  unrelated (ground-truth negative).

A topology-aware method (p-hom) should accept the true match and reject
the impostor; vertex-similarity matching (SF, Blondel) accepts both —
the false positive the paper warns about.  This isolates the qualitative
claim behind Table 3's SF column in a way that does not depend on how
graded the similarity values are.

Run: ``python -m repro.experiments.structure [--scale default]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.baselines.matchers import (
    FloodingMatcher,
    Matcher,
    PHomMatcher,
    VertexSimilarityMatcher,
)
from repro.datasets.skeleton import degree_skeleton
from repro.datasets.webbase import generate_archive, paper_sites
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.report import render_table
from repro.graph.digraph import DiGraph
from repro.similarity.shingles import shingle_similarity_matrix
from repro.utils.rng import derive_rng

__all__ = ["StructureCell", "build_impostor", "run_structure_blindness", "render", "main"]

XI = 0.75
ALPHA = 0.2


@dataclass
class StructureCell:
    """Quality of one method on the true pair and on the impostor pair."""

    matcher: str
    site: str
    true_quality: float
    impostor_quality: float


def build_impostor(skeleton: DiGraph, seed: int) -> DiGraph:
    """Same nodes and contents, freshly randomised sparse DAG structure.

    A random DAG (random node order, edges forward only, same edge count)
    keeps the impostor navigationally meaningless w.r.t. the original
    while leaving every page's content intact — the adversarial case for
    content-only matching.
    """
    rng = derive_rng(seed, "impostor", skeleton.name)
    nodes = list(skeleton.nodes())
    rng.shuffle(nodes)
    rank = {node: i for i, node in enumerate(nodes)}
    impostor = DiGraph(name=f"{skeleton.name}/impostor")
    for node in nodes:
        impostor.add_node(
            node,
            label=skeleton.label(node),
            weight=skeleton.weight(node),
            **skeleton.attrs(node),
        )
    target_edges = skeleton.num_edges()
    attempts = 0
    while impostor.num_edges() < target_edges and attempts < 50 * target_edges:
        attempts += 1
        tail, head = rng.choice(nodes), rng.choice(nodes)
        if rank[tail] < rank[head]:
            impostor.add_edge(tail, head)
    return impostor


def run_structure_blindness(
    scale: ExperimentScale,
    matchers: list[Matcher] | None = None,
) -> list[StructureCell]:
    """Run every matcher on (true pair, impostor pair) per site."""
    if matchers is None:
        matchers = [
            PHomMatcher("cardinality", False),
            PHomMatcher("cardinality", True),
            FloodingMatcher(),
            VertexSimilarityMatcher(),
        ]
    cells: list[StructureCell] = []
    for profile in paper_sites().values():
        archive = generate_archive(
            profile, num_versions=2, scale=scale.site_scale, seed=scale.seed
        )
        pattern = degree_skeleton(archive.pattern, ALPHA)
        true_data = degree_skeleton(archive.versions[1], ALPHA)
        impostor = build_impostor(pattern, scale.seed)
        true_mat = shingle_similarity_matrix(pattern, true_data)
        impostor_mat = shingle_similarity_matrix(pattern, impostor)
        for matcher in matchers:
            true_outcome = matcher.run(pattern, true_data, true_mat, XI)
            impostor_outcome = matcher.run(pattern, impostor, impostor_mat, XI)
            cells.append(
                StructureCell(
                    matcher=matcher.name,
                    site=profile.key,
                    true_quality=true_outcome.quality,
                    impostor_quality=impostor_outcome.quality,
                )
            )
    return cells


def render(cells: list[StructureCell], scale: ExperimentScale) -> str:
    rows = [
        (
            cell.matcher,
            cell.site,
            f"{cell.true_quality:.2f}",
            f"{cell.impostor_quality:.2f}",
            "FALSE POSITIVE" if cell.impostor_quality >= XI else "rejected",
        )
        for cell in cells
    ]
    return render_table(
        f"Structure blindness — true pair vs content-equal impostor (scale={scale.name})",
        ["Algorithm", "site", "true quality", "impostor quality", "impostor verdict"],
        rows,
    )


def main(argv: list[str] | None = None) -> list[StructureCell]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="smoke | default | paper")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    cells = run_structure_blindness(scale)
    print(render(cells, scale))
    return cells


if __name__ == "__main__":
    main()
