"""The ``python -m repro.analysis`` command line.

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import UsageError, run_analysis
from repro.analysis.rules import all_rules


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: project-specific invariant checks over the repo's AST",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument("--baseline", metavar="FILE", help="suppress findings recorded in FILE")
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument("--select", metavar="IDS", help="comma-separated rule ids to run")
    parser.add_argument("--disable", metavar="IDS", help="comma-separated rule ids to skip")
    parser.add_argument(
        "--all-files",
        action="store_true",
        help="apply every rule to every scanned file, ignoring per-rule path scopes",
    )
    parser.add_argument("--list-rules", action="store_true", help="list registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    try:
        baseline = load_baseline(args.baseline) if args.baseline else None
        report = run_analysis(
            args.paths,
            rules=rules,
            select=_split_ids(args.select),
            disable=_split_ids(args.disable),
            baseline=baseline,
            restrict_paths=not args.all_files,
        )
    except UsageError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(f"repro-lint: wrote baseline {args.write_baseline} ({count} entries)")
        return 0

    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return report.exit_code

    for error in report.parse_errors:
        print(error)
    for finding in report.findings:
        print(finding.render())
    suppressed = report.waived + report.baselined
    summary = (
        f"repro-lint: {len(report.findings)} finding(s) in {len(report.files)} file(s)"
    )
    if suppressed:
        summary += f" ({report.waived} waived, {report.baselined} baselined)"
    print(summary)
    return report.exit_code
