"""Microbenchmarks of the core machinery.

Not tied to a paper table; these keep the substrate honest: closure-index
construction, workspace setup (cold vs as a view over a prepared index),
a single compMaxCard run (cold vs through a session), the exact decision
procedure, and graph simulation, at a fixed synthetic size.  The
cold/prepared pairs make the amortisation of the prepared/session split
visible in the bench trajectory.
"""

import random

import pytest

from repro.baselines.simulation import graph_simulation
from repro.core.comp_max_card import comp_max_card, comp_max_card_injective
from repro.core.comp_max_sim import comp_max_sim
from repro.core.decision import is_phom
from repro.core.prepared import prepare_data_graph
from repro.core.service import MatchingService
from repro.core.workspace import MatchingWorkspace
from repro.datasets.synthetic import generate_workload
from repro.graph.closure import ReachabilityIndex
from repro.graph.generators import random_digraph


@pytest.fixture(scope="module")
def workload():
    return generate_workload(60, 10.0, num_copies=1, seed=42)


@pytest.fixture(scope="module")
def pair(workload):
    return workload.pattern, workload.copies[0], workload.matrix_for(0)


def test_reachability_index_build(benchmark):
    graph = random_digraph(400, 1600, random.Random(0))
    index = benchmark(ReachabilityIndex, graph)
    assert index.num_nodes() == 400


def test_workspace_build(benchmark, pair):
    g1, g2, mat = pair
    workspace = benchmark(MatchingWorkspace, g1, g2, mat, 0.75)
    assert workspace.num_candidate_pairs() > 0


def test_workspace_build_prepared(benchmark, pair):
    """Workspace as a thin view: the pattern-side-only construction cost."""
    g1, g2, mat = pair
    prepared = prepare_data_graph(g2)
    workspace = benchmark(MatchingWorkspace, g1, None, mat, 0.75, prepared)
    assert workspace.num_candidate_pairs() > 0
    assert workspace.from_mask is prepared.from_mask


def test_comp_max_card_run(benchmark, pair):
    g1, g2, mat = pair
    result = benchmark(comp_max_card, g1, g2, mat, 0.75)
    assert result.qual_card > 0.0


def test_comp_max_card_session_run(benchmark, pair):
    """The same solve through a session with the data graph pre-prepared."""
    g1, g2, mat = pair
    service = MatchingService()
    session = service.session(g2, mat, 0.75)
    report = benchmark(session.match, g1)
    assert report.result.qual_card > 0.0
    assert service.stats.prepares == 1


def test_comp_max_card_injective_run(benchmark, pair):
    g1, g2, mat = pair
    result = benchmark(comp_max_card_injective, g1, g2, mat, 0.75)
    assert result.qual_card > 0.0


def test_comp_max_sim_run(benchmark, pair):
    g1, g2, mat = pair
    result = benchmark(comp_max_sim, g1, g2, mat, 0.75)
    assert result.qual_sim > 0.0


def test_exact_decision_run(benchmark, pair):
    g1, g2, mat = pair
    assert benchmark(is_phom, g1, g2, mat, 0.75)


def test_graph_simulation_run(benchmark, pair):
    g1, g2, mat = pair
    result = benchmark(graph_simulation, g1, g2, mat, 0.75)
    assert 0.0 <= result.coverage <= 1.0
