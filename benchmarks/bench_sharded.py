"""Sharded matching cluster vs one flat service: identity and speedup.

Two claims, matching the sharded-cluster refactor:

**Bit-identity** (``test_sharded_equivalence``, CI's smoke): on a
2400-node union-of-sites data graph, the component-fanned sharded solve
returns exactly the flat partitioned solve's reports — same σ node for
node, same qualities to the last float bit — at every shard count.

**Serving speedup** (``test_sharded_speedup``): a corpus of twelve
200-node site graphs (2400 nodes total) served round-robin, the shape
of the paper's web-mirror workload at fleet scale.  A flat
:class:`~repro.core.service.MatchingService` holds ``max_prepared=8``
prepared indexes — the deliberate per-process memory budget — so
cycling through 12 graphs is the classic LRU sequential-scan pathology:
*every* request misses and re-prepares ``G2⁺``.  A four-shard
:class:`~repro.core.sharding.ShardedMatchingService` hash-routes each
graph to the worker owning it; per-worker budgets are unchanged but the
cluster's aggregate capacity (4 × 8 slots) holds the whole corpus, so
after one warm-up round no worker ever prepares again.  Same requests,
same per-request results (asserted), ≥ ``MIN_SPEEDUP``× less wall
clock (measured ~2.5–3× here) — the cache-capacity argument for
sharding, measured end-to-end.  Under ``--json PATH`` the timing test
writes ``BENCH_sharded.json``.
"""

from __future__ import annotations

import random
import time
from functools import lru_cache

import pytest

from repro.core.optimize import comp_max_card_partitioned
from repro.core.service import MatchingService
from repro.core.sharding import ShardPlan, ShardedMatchingService
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix

XI = 0.75
MIN_SPEEDUP = 1.5

# Component-fanout equivalence shape: one graph, SITES weak components.
SITES = 4
SITE_NODES = 600
PATTERN_NODES = 50
PATTERNS_PER_SITE = 5

# Corpus-serving shape: CORPUS_GRAPHS whole graphs, hash-routed.
CORPUS_GRAPHS = 12
CORPUS_GRAPH_NODES = 200
SHARDS = 4
SERVING_ROUNDS = 3


def _label_matrix(pattern: DiGraph, data: DiGraph, by_label) -> SimilarityMatrix:
    mat = SimilarityMatrix()
    for v in pattern.nodes():
        for u in by_label[data.label(v)]:
            mat.set(v, u, 1.0)
    return mat


@lru_cache(maxsize=None)
def _union_workload():
    """One 2400-node graph of four weakly connected sites + 20 patterns.

    Labels are site-prefixed, so every pattern component's candidates
    stay inside one site — the pure fan-out regime (spill-path identity
    is the test suite's job).
    """
    rng = random.Random(2034)
    data = DiGraph(name="corpus2400")
    for site in range(SITES):
        base = site * SITE_NODES
        for i in range(SITE_NODES):
            data.add_node(base + i, label=f"s{site}:L{rng.randrange(12)}")
        for _ in range(3 * SITE_NODES):
            a = base + rng.randrange(SITE_NODES)
            b = base + rng.randrange(SITE_NODES)
            if a != b:
                data.add_edge(a, b)
        for i in range(SITE_NODES - 1):  # keep each site weakly connected
            data.add_edge(base + i, base + i + 1)

    by_label: dict[str, list[int]] = {}
    for u in data.nodes():
        by_label.setdefault(data.label(u), []).append(u)

    patterns, matrices = [], {}
    for site in range(SITES):
        base = site * SITE_NODES
        site_nodes = list(range(base, base + SITE_NODES))
        for p in range(PATTERNS_PER_SITE):
            pattern = data.subgraph(
                rng.sample(site_nodes, PATTERN_NODES), name=f"s{site}p{p}"
            )
            patterns.append(pattern)
            matrices[pattern.name] = _label_matrix(pattern, data, by_label)
    source = lambda pattern, _data: matrices[pattern.name]
    return data, patterns, source


@lru_cache(maxsize=None)
def _corpus_workload():
    """Twelve 200-node site graphs with one small pattern each."""
    rng = random.Random(7041)
    corpus = []
    for g in range(CORPUS_GRAPHS):
        graph = DiGraph(name=f"site{g}")
        for i in range(CORPUS_GRAPH_NODES):
            graph.add_node(i, label=f"L{rng.randrange(8)}")
        for _ in range(3 * CORPUS_GRAPH_NODES):
            a = rng.randrange(CORPUS_GRAPH_NODES)
            b = rng.randrange(CORPUS_GRAPH_NODES)
            if a != b:
                graph.add_edge(a, b)
        for i in range(CORPUS_GRAPH_NODES - 1):
            graph.add_edge(i, i + 1)
        by_label: dict[str, list[int]] = {}
        for u in graph.nodes():
            by_label.setdefault(graph.label(u), []).append(u)
        pattern = graph.subgraph(
            rng.sample(range(CORPUS_GRAPH_NODES), 7), name=f"g{g}p0"
        )
        corpus.append((graph, [pattern], _label_matrix(pattern, graph, by_label)))
    return corpus


def _serve_corpus(service, rounds: int):
    """Round-robin every corpus graph's patterns through ``service``."""
    reports = []
    for _ in range(rounds):
        for graph, patterns, mat in _corpus_workload():
            reports.extend(service.match_many(patterns, graph, mat, XI))
    return reports


def _mappings(reports):
    return [report.result.mapping for report in reports]


def test_sharded_equivalence():
    """Sharded and flat partitioned solves are bit-identical (CI smoke)."""
    data, patterns, source = _union_workload()
    plan = ShardPlan.for_data_graph(data, SITES)
    assert len(plan.nonempty_shards()) == SITES

    flat = MatchingService()
    flat_reports = flat.match_many(patterns, data, source, XI, partitioned=True)
    for shards in (1, SITES):
        service = ShardedMatchingService(shards)
        reports = service.match_many_sharded(patterns, data, source, XI)
        assert _mappings(reports) == _mappings(flat_reports)
        assert [r.quality for r in reports] == [r.quality for r in flat_reports]
        assert [r.result.qual_sim for r in reports] == [
            r.result.qual_sim for r in flat_reports
        ]
        if shards == SITES:
            snap = service.stats_snapshot()
            assert snap["spill_components"] == 0  # confined workload
            assert all(s["calls"] > 0 for s in snap["per_shard"])

    # Spot-check against the direct algorithm too (same planner underneath).
    direct = comp_max_card_partitioned(
        patterns[0], data, source(patterns[0], data), XI
    )
    assert flat_reports[0].result.mapping == direct.mapping


def test_sharded_speedup(bench_json):
    """4-shard corpus serving ≥ 1.5× a flat LRU-thrashing service."""
    flat = MatchingService()
    sharded = ShardedMatchingService(SHARDS)
    _serve_corpus(flat, 1)  # warm-up round for both deployments
    _serve_corpus(sharded, 1)

    start = time.perf_counter()
    flat_reports = _serve_corpus(flat, SERVING_ROUNDS)
    flat_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded_reports = _serve_corpus(sharded, SERVING_ROUNDS)
    sharded_seconds = time.perf_counter() - start

    assert _mappings(sharded_reports) == _mappings(flat_reports)
    speedup = flat_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    flat_snap = flat.stats.snapshot()
    sharded_snap = sharded.stats_snapshot()
    requests = SERVING_ROUNDS * CORPUS_GRAPHS
    print(
        f"\nflat={flat_seconds:.3f}s ({flat_snap['prepares']} prepares) "
        f"sharded={sharded_seconds:.3f}s "
        f"({sharded_snap['aggregate']['prepares']} prepares, all warm-up) "
        f"speedup={speedup:.2f}x on {CORPUS_GRAPHS}x{CORPUS_GRAPH_NODES}-node "
        f"corpus, {requests} requests, {SHARDS} shards"
    )
    bench_json(
        "sharded",
        {
            "corpus_graphs": CORPUS_GRAPHS,
            "corpus_graph_nodes": CORPUS_GRAPH_NODES,
            "corpus_total_nodes": CORPUS_GRAPHS * CORPUS_GRAPH_NODES,
            "shards": SHARDS,
            "serving_rounds": SERVING_ROUNDS,
            "xi": XI,
            "flat_seconds": flat_seconds,
            "flat_prepares": flat_snap["prepares"],
            "flat_max_prepared": 8,
            "sharded_seconds": sharded_seconds,
            "sharded_prepares": sharded_snap["aggregate"]["prepares"],
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    # The flat service thrashes (one re-prepare per request past warm-up);
    # the cluster's aggregate cache held the corpus and never re-prepared.
    assert flat_snap["prepares"] >= requests
    assert sharded_snap["aggregate"]["prepares"] == CORPUS_GRAPHS
    assert speedup >= MIN_SPEEDUP


@pytest.mark.parametrize("shards", (1, SHARDS))
def test_serving_benchmark(benchmark, shards):
    """pytest-benchmark timing of one corpus round per cluster size.

    ``shards=1`` is a one-worker cluster — it thrashes exactly like the
    flat service; ``shards=4`` holds the corpus.
    """
    service = ShardedMatchingService(shards)
    _serve_corpus(service, 1)  # warm-up
    reports = benchmark.pedantic(
        lambda: _serve_corpus(service, 1), rounds=1, iterations=1
    )
    assert len(reports) == CORPUS_GRAPHS
