"""Transitive closure and the bitset reachability index ``H2``.

The matching algorithms of the paper query one relation constantly:

    ``(u1, u2) ∈ E2⁺``  —  "is there a *nonempty* path from u1 to u2 in G2?"

Algorithm ``compMaxCard`` (paper Fig. 3, lines 5–7) materialises this as an
adjacency matrix ``H2`` over the transitive closure ``G2⁺``.  We provide the
same object as :class:`ReachabilityIndex`: one Python big-int bitmask per
node, built SCC-by-SCC on the condensation in reverse topological order
(the approach of Nuutila [22] cited by the paper).  Bitmask rows keep the
index at ~|V|²/8 bytes and make "prune every candidate that cannot reach u"
a single mask intersection.

``transitive_closure_graph`` additionally materialises ``G⁺`` as a
:class:`DiGraph` — used by the symmetric (path-to-path) matching variant of
Section 3.2 and by the SCC-compression optimization of Appendix B.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation
from repro.utils.errors import GraphError

__all__ = ["ReachabilityIndex", "component_member_masks", "transitive_closure_graph"]

Node = Hashable


def component_member_masks(cond: Condensation, position_of: dict[Node, int]) -> list[int]:
    """One bitmask per SCC with the position bit of every member set.

    The building block both closure computations share: the full
    :class:`ReachabilityIndex` construction OR-combines these masks over
    the whole condensation, and the incremental re-prepare
    (:mod:`repro.core.incremental`) over just the dirty components.
    """
    masks = [0] * cond.num_components()
    for cid, members in enumerate(cond.components):
        mask = 0
        for member in members:
            mask |= 1 << position_of[member]
        masks[cid] = mask
    return masks


class ReachabilityIndex:
    """Nonempty-path reachability over a directed graph, as bitmask rows.

    ``index.has_path(u1, u2)`` is True iff ``(u1, u2) ∈ E⁺``, i.e. there is a
    path of length ≥ 1 from u1 to u2.  In particular ``has_path(u, u)`` holds
    only when u lies on a cycle (or carries a self-loop) — the exact edge
    relation of the paper's ``G⁺``.

    Nodes are assigned dense integer positions (``position_of``); ``row(u)``
    exposes the raw bitmask for algorithms that want set-at-a-time pruning.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._order: list[Node] = list(graph.nodes())
        self.position_of: dict[Node, int] = {node: i for i, node in enumerate(self._order)}
        cond = Condensation(graph)

        # Bit masks per SCC: members_mask = bits of the SCC's own nodes;
        # reach_mask = bits of everything reachable by a nonempty path from
        # any member.  Tarjan order is reverse topological, so successors of
        # a component are always processed before the component itself.
        members_mask = component_member_masks(cond, self.position_of)

        reach_mask = [0] * cond.num_components()
        for cid in cond.reverse_topological_ids():
            mask = 0
            for succ_cid in cond.successors(cid):
                mask |= members_mask[succ_cid] | reach_mask[succ_cid]
            if cond.has_internal_cycle(cid):
                # Every member reaches every member (including itself).
                mask |= members_mask[cid]
            reach_mask[cid] = mask

        self._rows: dict[Node, int] = {}
        for node in self._order:
            self._rows[node] = reach_mask[cond.component_of[node]]

    def __contains__(self, node: Node) -> bool:
        return node in self._rows

    def num_nodes(self) -> int:
        """Number of indexed nodes."""
        return len(self._order)

    def has_path(self, source: Node, target: Node) -> bool:
        """True iff a nonempty path leads from ``source`` to ``target``."""
        try:
            row = self._rows[source]
        except KeyError:
            raise GraphError(f"node {source!r} not in reachability index") from None
        try:
            bit = self.position_of[target]
        except KeyError:
            raise GraphError(f"node {target!r} not in reachability index") from None
        return bool(row >> bit & 1)

    def on_cycle(self, node: Node) -> bool:
        """True iff ``node`` can reach itself by a nonempty path."""
        return self.has_path(node, node)

    def row(self, node: Node) -> int:
        """The raw reachability bitmask of ``node`` (bit i = position i)."""
        try:
            return self._rows[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in reachability index") from None

    def mask_of(self, nodes) -> int:
        """Bitmask with the position bit of every node in ``nodes`` set."""
        mask = 0
        for node in nodes:
            mask |= 1 << self.position_of[node]
        return mask

    def reachable_set(self, node: Node) -> set[Node]:
        """The set of nodes reachable from ``node`` by a nonempty path."""
        row = self.row(node)
        return {other for other in self._order if row >> self.position_of[other] & 1}

    def closure_size(self) -> int:
        """|E⁺|: total number of (source, target) pairs with a nonempty path."""
        return sum(row.bit_count() for row in self._rows.values())


def transitive_closure_graph(graph: DiGraph) -> DiGraph:
    """Materialise ``G⁺`` as a :class:`DiGraph`.

    The result has the same nodes (labels, weights and attrs preserved) and
    an edge ``(v1, v2)`` for every nonempty path of ``graph``.  Quadratic
    output in the worst case; the matching algorithms use
    :class:`ReachabilityIndex` instead and only the optimization layer and
    the symmetric variant materialise the closure.
    """
    index = ReachabilityIndex(graph)
    closure = DiGraph(name=f"{graph.name}+" if graph.name else "")
    for node in graph.nodes():
        closure.add_node(
            node,
            label=graph.label(node),
            weight=graph.weight(node),
            **graph.attrs(node),
        )
    for node in graph.nodes():
        for target in index.reachable_set(node):
            closure.add_edge(node, target)
    return closure
