"""The vectorized backend: candidate masks as ``uint64`` block matrices.

Profiling the reference backend shows the greedy recursion's frames are
bimodal: a short *spine* of wide matching lists (the ``H⁺`` chain of the
top-level list — tens to hundreds of rows) and a long tail of tiny
``H⁻`` lists, 80 %+ of them single-row chains that burn one full frame
per candidate bit.  This backend attacks both ends, adaptively:

**Dense mode** (row count > ``SMALL_CUTOFF``) — the matching list is
``keys`` (present pattern indices, ascending) plus ``good`` / ``minus``
as ``(k, W)`` ``uint64`` matrices, word ``w`` of a row holding data-node
bits ``64·w … 64·w+63`` (little-endian, matching ``int.to_bytes``).
Every loop the reference runs row-by-row through a Python dict becomes
one whole-matrix kernel: line 2's "largest good list" is a
``bitwise_count`` + ``argmax`` (ties resolve to the smallest pattern
index for free because ``keys`` is sorted); trimMatching is a
fancy-indexed row-AND for all surviving parents (children) at once; the
1-1 capacity sweep is a single column test; the ``H⁺``/``H⁻`` partition
is two ``any`` reductions and boolean-mask row copies.

**Small mode** (row count ≤ ``SMALL_CUTOFF``) — numpy kernels cost ~µs
each regardless of size, so tiny lists fall back to the reference
representation (``{v: [good, minus]}`` big-int dicts, converted once at
partition time) where CPython's C-level big-int ops win.  The dict
operations are *delegated to* :mod:`~repro.core.backends.python_int`'s
``*_entries`` functions, not re-implemented, so the two backends cannot
drift apart in this regime.

**Trivial chains** — a single-row list ``{v: mask}`` cannot trim or
exhaust anything (both operations only touch *other* rows), so its
entire recursion subtree has a closed form: ``σ = [(v, u₁)]`` and
``I = [(v, u_c), …, (v, u₁)]`` where ``u₁ … u_c`` is the pick sequence
(preference-ordered surviving candidates, then remaining bits
ascending — exactly what re-running line 2 per frame yields).
``solve_trivial`` returns that in O(c) instead of c frames; capacities
are irrelevant on the way (nothing else is left to exhaust).

Popcounts use ``numpy.bitwise_count`` (NumPy ≥ 2.0) with a SWAR
(SIMD-within-a-register) fallback for older NumPy.  Results are
bit-identical to :class:`~repro.core.backends.python_int.PythonIntBackend`
— the backend equivalence suite and ``benchmarks/bench_backends.py``
assert it, including the pick order inside collapsed chains — only the
time budget moves.

The module imports without numpy installed; constructing the backend
then raises a :class:`~repro.utils.errors.InputError` naming the fix.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.backends.base import MatchingList, SolverBackend
from repro.core.backends.python_int import (
    exhaust_entries,
    partition_entries,
    pick_candidate_entries,
    pick_node_entries,
    settle_entries,
    trim_entries,
)
from repro.utils.errors import InputError

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

__all__ = [
    "BlockBackendBase",
    "NumpyBlockBackend",
    "NumpyMatchingList",
    "numpy_available",
    "SMALL_CUTOFF",
]

#: Lists at or below this many rows use the big-int dict representation;
#: above it, uint64 block matrices.  Around this size the fixed cost of
#: a numpy kernel launch crosses the per-row cost of a C big-int op.
SMALL_CUTOFF = 48


def numpy_available() -> bool:
    """True iff numpy is importable (the backend is constructible)."""
    return np is not None


if np is not None:
    _U1 = np.uint64(1)
    _U6 = np.uint64(6)
    _U63 = np.uint64(63)
    #: Per-bit set / clear words, precomputed once.
    _BIT = np.array([1 << b for b in range(64)], dtype=np.uint64)
    _INV = np.array(
        [((1 << 64) - 1) ^ (1 << b) for b in range(64)], dtype=np.uint64
    )

    if hasattr(np, "bitwise_count"):

        def _popcount_rows(matrix):
            """Per-row popcounts of a ``(k, W)`` uint64 matrix."""
            return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)

    else:  # pragma: no cover - NumPy < 2.0 fallback

        _M1 = np.uint64(0x5555555555555555)
        _M2 = np.uint64(0x3333333333333333)
        _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        _H01 = np.uint64(0x0101010101010101)

        def _popcount_rows(matrix):
            """SWAR popcount (Hacker's Delight 5-2), vectorized per word."""
            x = matrix - ((matrix >> _U1) & _M1)
            x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
            x = (x + (x >> np.uint64(4))) & _M4
            return ((x * _H01) >> np.uint64(56)).sum(axis=1, dtype=np.int64)


def _require_numpy(name: str = "numpy") -> None:
    if np is None:
        raise InputError(
            f"the {name!r} solver backend needs numpy installed; "
            "pip install numpy, or select REPRO_BACKEND=python"
        )


class _NumpyRows:
    """Closure rows, both native ``(n, W)`` uint64 matrices *and* the
    original big-int lists (shared by reference — small mode trims with
    ints, dense mode with matrix rows)."""

    __slots__ = ("from_rows", "to_rows", "from_ints", "to_ints", "num_bits", "words")

    def __init__(self, from_rows, to_rows, from_ints, to_ints, num_bits, words):
        self.from_rows = from_rows
        self.to_rows = to_rows
        self.from_ints = from_ints
        self.to_ints = to_ints
        self.num_bits = num_bits
        self.words = words


class _NumpyContext:
    """Engine context: native closure rows + pattern-side index tables."""

    __slots__ = (
        "rows",
        "num_pattern",
        "prev",
        "post",
        "pref",
        "prev_idx",
        "post_idx",
        "pref_idx",
        "_pref_rank",
    )

    def __init__(self, rows: _NumpyRows, num_pattern: int, prev, post, pref) -> None:
        self.rows = rows
        self.num_pattern = num_pattern
        self.prev = prev
        self.post = post
        self.pref = pref
        # Dense-mode trim tables: unique neighbor indices with the owner
        # itself removed (the ``neighbor != v`` guard, hoisted out of the
        # hot loop).
        self.prev_idx = [
            np.unique(np.array([p for p in row if p != v], dtype=np.int64))
            for v, row in enumerate(prev)
        ]
        self.post_idx = [
            np.unique(np.array([s for s in row if s != v], dtype=np.int64))
            for v, row in enumerate(post)
        ]
        #: Preference orders as uint64 index arrays (dense similarity pick).
        self.pref_idx = [np.array(row, dtype=np.uint64) for row in pref]
        #: Lazy per-node candidate→preference-rank maps (trivial chains).
        self._pref_rank: list[dict[int, int] | None] = [None] * len(pref)

    def pref_rank(self, v: int) -> dict[int, int]:
        rank = self._pref_rank[v]
        if rank is None:
            rank = {u: i for i, u in enumerate(self.pref[v])}
            self._pref_rank[v] = rank
        return rank


def _masks_to_matrix(masks: Sequence[int], words: int):
    """Pack big-int rows into a ``(len(masks), words)`` uint64 matrix."""
    if not masks:
        return np.zeros((0, words), dtype=np.uint64)
    nbytes = words * 8
    buffer = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    return np.frombuffer(buffer, dtype="<u8").reshape(len(masks), words).copy()


def _row_to_int(row) -> int:
    return int.from_bytes(row.tobytes(), "little")


def _mask_bits(mask: int) -> list[int]:
    """Set-bit indices of ``mask``, ascending."""
    bits = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return bits


class NumpyMatchingList(MatchingList):
    """``H`` in adaptive representation: block matrices or a big-int dict.

    Exactly one of ``entries`` (small mode) and ``keys``/``good``/``minus``
    (dense mode) is populated; partitioning demotes children that fall to
    ``SMALL_CUTOFF`` rows or fewer, and lists never grow, so a demoted
    list stays small for the rest of its subtree.
    """

    __slots__ = ("ctx", "entries", "keys", "good", "minus", "_pos")

    def __init__(self, ctx: _NumpyContext, entries=None, keys=None, good=None, minus=None):
        self.ctx = ctx
        self.entries = entries
        self.keys = keys
        self.good = good
        self.minus = minus
        if entries is None:
            # Dense position table: _pos[v] = row of v, -1 when absent.
            # The pattern side is small, so one vectorized rebuild per
            # frame beats a searchsorted on every settle/trim.
            pos = np.full(ctx.num_pattern, -1, dtype=np.int64)
            if keys.size:
                pos[keys] = np.arange(keys.size, dtype=np.int64)
            self._pos = pos
        else:
            self._pos = None

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        if self.entries is not None:
            return not self.entries
        return self.keys.size == 0

    def solve_trivial(self, by_similarity: bool):
        entries = self.entries
        if entries is None or len(entries) != 1:
            return None
        ((v, masks),) = entries.items()
        bits = _mask_bits(masks[0])
        if by_similarity:
            # Stepwise pick order: preferred candidates in preference
            # order, then the un-ranked rest ascending — re-picking per
            # frame never reorders survivors, so one sort reproduces it.
            rank = self.ctx.pref_rank(v)
            missing = len(rank)
            bits.sort(key=lambda u: (rank.get(u, missing), u))
        sigma = [(v, bits[0])]
        iset = [(v, u) for u in reversed(bits)]
        return sigma, iset

    def pick_node(self) -> int:
        if self.entries is not None:
            return pick_node_entries(self.entries)
        counts = _popcount_rows(self.good)
        return int(self.keys[int(np.argmax(counts))])  # first max == smallest key

    def pick_candidate(self, v: int, pref: Sequence[int] | None) -> int:
        if self.entries is not None:
            return pick_candidate_entries(self.entries, v, pref)
        row = self.good[self._pos[v]]
        if pref is not None and len(pref):
            order = self.ctx.pref_idx[v]
            words = row[(order >> _U6).astype(np.intp)]
            hits = ((words >> (order & _U63)) & _U1).nonzero()[0]
            if hits.size:
                return int(order[hits[0]])
        nonzero_words = row.nonzero()[0]
        w = int(nonzero_words[0])
        word = int(row[w])
        return (w << 6) + ((word & -word).bit_length() - 1)

    def settle(self, v: int, u: int) -> None:
        if self.entries is not None:
            settle_entries(self.entries, v, u)
            return
        i = self._pos[v]
        w, b = u >> 6, u & 63
        self.minus[i, :] = self.good[i, :]
        self.minus[i, w] &= _INV[b]
        self.good[i, :] = 0

    def exhaust(self, u: int, v: int) -> None:
        if self.entries is not None:
            exhaust_entries(self.entries, u, v)
            return
        # settle() already zeroed v's good row, so the column test never
        # selects it; no explicit skip needed.
        w, b = u >> 6, u & 63
        bit = _BIT[b]
        column = (self.good[:, w] & bit) != 0
        if column.any():
            self.minus[column, w] |= bit
            self.good[column, w] &= _INV[b]

    def trim(self, v: int, u: int) -> None:
        ctx = self.ctx
        if self.entries is not None:
            trim_entries(self.entries, ctx.prev[v], v, ctx.rows.to_ints[u])
            trim_entries(self.entries, ctx.post[v], v, ctx.rows.from_ints[u])
            return
        pos = self._pos
        for neighbors, mask_row in (
            (ctx.prev_idx[v], ctx.rows.to_rows[u]),
            (ctx.post_idx[v], ctx.rows.from_rows[u]),
        ):
            if neighbors.size == 0:
                continue
            present = pos[neighbors]
            present = present[present >= 0]
            if present.size == 0:
                continue
            selected = self.good[present]
            bad = selected & ~mask_row
            self.good[present] = selected & mask_row
            self.minus[present] |= bad

    def partition(self) -> tuple["NumpyMatchingList", "NumpyMatchingList"]:
        ctx = self.ctx
        if self.entries is not None:
            h_plus, h_minus = partition_entries(self.entries)
            return (
                NumpyMatchingList(ctx, entries=h_plus),
                NumpyMatchingList(ctx, entries=h_minus),
            )
        children = []
        for matrix in (self.good, self.minus):
            alive = matrix.any(axis=1)
            count = int(alive.sum())
            keys = self.keys[alive]
            rows = matrix[alive]
            if count <= SMALL_CUTOFF:
                # Demote: below the cutoff the dict representation wins.
                entries = {
                    int(keys[i]): [_row_to_int(rows[i]), 0] for i in range(count)
                }
                children.append(NumpyMatchingList(ctx, entries=entries))
            else:
                children.append(
                    NumpyMatchingList(
                        ctx, keys=keys, good=rows, minus=np.zeros_like(rows)
                    )
                )
        return children[0], children[1]

    def to_masks(self) -> dict[int, tuple[int, int]]:
        if self.entries is not None:
            return {v: (masks[0], masks[1]) for v, masks in self.entries.items()}
        return {
            int(v): (_row_to_int(self.good[i]), _row_to_int(self.minus[i]))
            for i, v in enumerate(self.keys)
        }


class BlockBackendBase(SolverBackend):
    """The shared uint64-block kernel set behind every matrix backend.

    Everything the engine touches — adaptive matching lists, dense
    trims, popcount picks, the collapsed trivial chains — lives here and
    operates through single-row indexing of ``context.rows.from_rows`` /
    ``to_rows``, so subclasses choose only *where the row matrices
    live*: :class:`NumpyBlockBackend` packs private copies from the
    big-int masks, the mmap backend
    (:class:`~repro.core.backends.mmap_block.MmapBlockBackend`) hands
    back views over store-file pages.  Either way the kernels — and
    therefore the answers — are byte-for-byte the same code.
    """

    def __init__(self) -> None:
        _require_numpy(self.name or "numpy")

    @staticmethod
    def _words_for(num_bits: int) -> int:
        return max(1, (num_bits + 63) // 64)

    def build_rows(
        self, from_mask: Sequence[int], to_mask: Sequence[int], num_bits: int
    ) -> _NumpyRows:
        words = self._words_for(num_bits)
        return _NumpyRows(
            _masks_to_matrix(from_mask, words),
            _masks_to_matrix(to_mask, words),
            from_mask,
            to_mask,
            num_bits,
            words,
        )

    def evolve_rows(
        self,
        rows: _NumpyRows,
        from_mask: Sequence[int],
        to_mask: Sequence[int],
        num_bits: int,
        dirty: Sequence[int],
    ) -> _NumpyRows | None:
        """Rewrite only the dirty matrix rows of a cached conversion.

        An incremental re-prepare leaves most closure rows untouched, so
        the uint64 block matrices are copied once and the dirty rows
        repacked in place of a full ``build_rows`` — O(dirty · words)
        instead of O(n · words).  The base matrices are never mutated
        (the old index may still be serving from them).
        """
        if rows.num_bits != num_bits or len(from_mask) != rows.from_rows.shape[0]:
            return None  # geometry moved: rebuild lazily instead
        nbytes = rows.words * 8
        from_rows = rows.from_rows.copy()
        to_rows = rows.to_rows.copy()
        for p in dirty:
            from_rows[p] = np.frombuffer(
                from_mask[p].to_bytes(nbytes, "little"), dtype="<u8"
            )
            to_rows[p] = np.frombuffer(
                to_mask[p].to_bytes(nbytes, "little"), dtype="<u8"
            )
        return _NumpyRows(from_rows, to_rows, from_mask, to_mask, num_bits, rows.words)

    def build_context(self, workspace) -> _NumpyContext:
        prepared = workspace.prepared
        if (
            prepared is not None
            and workspace.from_mask is prepared.from_mask
            and workspace.to_mask is prepared.to_mask
        ):
            # Shared closure rows: the conversion is cached on the
            # prepared index, paid once per data graph, not per pattern.
            rows = prepared.backend_rows(self)
        else:
            # Overridden rows (hop-bounded matching, tests): private.
            rows = self.build_rows(
                workspace.from_mask, workspace.to_mask, len(workspace.nodes2)
            )
        return _NumpyContext(
            rows, len(workspace.nodes1), workspace.prev, workspace.post, workspace.pref
        )

    def matching_list(
        self, top_good: dict[int, int], context: _NumpyContext
    ) -> NumpyMatchingList:
        live = sorted((v, mask) for v, mask in top_good.items() if mask)
        if len(live) <= SMALL_CUTOFF:
            return NumpyMatchingList(
                context, entries={v: [mask, 0] for v, mask in live}
            )
        keys = np.fromiter((v for v, _ in live), dtype=np.int64, count=len(live))
        good = _masks_to_matrix([mask for _, mask in live], context.rows.words)
        return NumpyMatchingList(
            context, keys=keys, good=good, minus=np.zeros_like(good)
        )

class NumpyBlockBackend(BlockBackendBase):
    """Adaptive uint64-block / big-int engine; requires numpy.

    Rows are packed into private ``(n, W)`` matrices from the prepared
    index's big-int masks (`build_rows`); all solving behaviour comes
    from :class:`BlockBackendBase`.
    """

    name = "numpy"
