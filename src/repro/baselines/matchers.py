"""Uniform matcher interface for the experiment harness.

Table 3 and Figures 5–6 run six-plus methods over the same inputs.  Every
method is wrapped as a :class:`Matcher` producing a :class:`MatchOutcome`
whose ``quality ∈ [0, 1]`` is compared against the experiment's match
threshold (0.75 in the paper):

* the four p-hom algorithms report ``qualCard`` / ``qualSim``;
* **graphSimulation** reports 1.0 when the whole pattern is simulated and
  0.0 otherwise (whole-graph semantics — the notion has no partial match);
* **cdkMCS** reports the common-subgraph fraction, with ``completed=False``
  when its time budget runs out (rendered as "N/A", as in Table 3);
* **SF** (similarity flooding) extracts a 1-1 matching from the flooded
  score matrix and reports the fraction of pattern nodes whose *flooded*
  score clears the threshold — the "vertex similarity alone" decision rule:
  no topology constraints, only the fixpoint similarity.  Score dilution on
  large, heavily-edited graphs is what makes this baseline degrade, which
  is exactly the behaviour the paper reports;
* **vertexSim** (Blondel et al.) is the same rule on the hub/authority
  similarity matrix (the paper tested it and found results similar to SF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.baselines.mcs import maximum_common_subgraph
from repro.baselines.simulation import graph_simulation
from repro.core.comp_max_card import comp_max_card, comp_max_card_injective
from repro.core.comp_max_sim import comp_max_sim, comp_max_sim_injective
from repro.graph.digraph import DiGraph
from repro.similarity.flooding import extract_matching, similarity_flooding
from repro.similarity.matrix import SimilarityMatrix
from repro.similarity.vertex import blondel_vertex_similarity
from repro.utils.errors import InputError
from repro.utils.timing import Stopwatch

__all__ = [
    "MatchOutcome",
    "Matcher",
    "PHomMatcher",
    "SimulationMatcher",
    "MCSMatcher",
    "FloodingMatcher",
    "VertexSimilarityMatcher",
    "default_matchers",
    "paper_table3_matchers",
]

Node = Hashable


@dataclass
class MatchOutcome:
    """One matcher's verdict on one (pattern, data) pair."""

    matcher: str
    quality: float
    elapsed_seconds: float
    completed: bool = True
    mapping: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def matched(self, threshold: float) -> bool:
        """The experiment decision rule: match when quality ≥ threshold."""
        return self.completed and self.quality >= threshold


class Matcher:
    """Base class: a named method mapping (G1, G2, mat, ξ) to an outcome.

    ``prepared`` optionally supplies a pre-built index of ``graph2`` (see
    :mod:`repro.core.prepared`); methods that cannot use one ignore it.
    The harness passes it when a cell shares data graphs across matchers,
    so the ``G2⁺`` construction is paid once per graph, not once per run.
    """

    name: str = "matcher"
    #: Whether :meth:`run` can exploit a prepared index.  The harness
    #: skips building one for matchers that would ignore it.
    uses_prepared: bool = False

    def run(
        self,
        graph1: DiGraph,
        graph2: DiGraph,
        mat: SimilarityMatrix,
        xi: float,
        prepared=None,
    ) -> MatchOutcome:
        raise NotImplementedError


class PHomMatcher(Matcher):
    """One of the paper's four algorithms, selected by metric and 1-1 flag."""

    uses_prepared = True

    _RUNNERS: dict[tuple[str, bool], tuple[str, Callable]] = {
        ("cardinality", False): ("compMaxCard", comp_max_card),
        ("cardinality", True): ("compMaxCard_1-1", comp_max_card_injective),
        ("similarity", False): ("compMaxSim", comp_max_sim),
        ("similarity", True): ("compMaxSim_1-1", comp_max_sim_injective),
    }

    def __init__(
        self,
        metric: str = "cardinality",
        injective: bool = False,
        pick: str = "similarity",
    ) -> None:
        try:
            self.name, self._runner = self._RUNNERS[(metric, injective)]
        except KeyError:
            raise InputError(f"unknown p-hom matcher configuration {(metric, injective)!r}")
        self.metric = metric
        self.injective = injective
        self.pick = pick

    def run(self, graph1, graph2, mat, xi, prepared=None):
        result = self._runner(graph1, graph2, mat, xi, pick=self.pick, prepared=prepared)
        quality = result.qual_card if self.metric == "cardinality" else result.qual_sim
        return MatchOutcome(
            matcher=self.name,
            quality=quality,
            elapsed_seconds=result.stats.get("elapsed_seconds", 0.0),
            mapping=result.mapping,
            extra={"qual_card": result.qual_card, "qual_sim": result.qual_sim},
        )


class SimulationMatcher(Matcher):
    """Whole-graph graph simulation [17]."""

    name = "graphSimulation"

    def run(self, graph1, graph2, mat, xi, prepared=None):
        result = graph_simulation(graph1, graph2, mat, xi)
        return MatchOutcome(
            matcher=self.name,
            quality=1.0 if result.total else 0.0,
            elapsed_seconds=result.elapsed_seconds,
            extra={"coverage": result.coverage},
        )


class MCSMatcher(Matcher):
    """Maximum common subgraph under a time budget (the cdkMCS stand-in)."""

    name = "cdkMCS"

    def __init__(self, budget_seconds: float | None = 10.0) -> None:
        self.budget_seconds = budget_seconds

    def run(self, graph1, graph2, mat, xi, prepared=None):
        result = maximum_common_subgraph(graph1, graph2, mat, xi, self.budget_seconds)
        return MatchOutcome(
            matcher=self.name,
            quality=result.qual_card,
            elapsed_seconds=result.elapsed_seconds,
            completed=result.completed,
            mapping=result.mapping,
            extra={"product_nodes": result.product_nodes},
        )


def _similarity_only_quality(
    graph1: DiGraph,
    ranking: SimilarityMatrix,
    judge: SimilarityMatrix,
    xi: float,
) -> tuple[float, dict]:
    """The vertex-similarity decision rule.

    The similarity method's output (``ranking``) decides *which* 1-1
    alignment to commit to; a selected pair counts only when it clears the
    experiment's ξ bar under ``judge``.  Passing the initial ``mat`` as the
    judge gives every method the same similarity bar that p-hom's condition
    (1) imposes; passing the method's own scores reproduces the raw
    "similarity ≥ ξ" reading.  Either way there is **no topology
    constraint** — this is exactly the "vertex similarity alone" matching
    the paper argues is insufficient.
    """
    mapping = extract_matching(ranking, threshold=0.0, injective=True)
    cleared = {v: u for v, u in mapping.items() if judge(v, u) >= xi}
    n1 = graph1.num_nodes()
    return (len(cleared) / n1) if n1 else 1.0, cleared


class FloodingMatcher(Matcher):
    """Similarity flooding [21] — the paper's SF baseline.

    ``decision`` selects the match-counting rule (see
    :func:`_similarity_only_quality`): ``"initial"`` (default) judges the
    SF-chosen pairs by the input ``mat`` — the same ξ bar the p-hom
    algorithms face; ``"flooded"`` judges them by SF's own normalised
    scores, which dilute on large graphs (the sharper reading of the
    paper's observation that SF "deteriorated rapidly" with size).
    """

    name = "SF"

    def __init__(
        self,
        formula: str = "c",
        max_iterations: int = 50,
        decision: str = "initial",
    ) -> None:
        if decision not in ("initial", "flooded"):
            raise InputError(f"unknown SF decision rule {decision!r}")
        self.formula = formula
        self.max_iterations = max_iterations
        self.decision = decision

    def run(self, graph1, graph2, mat, xi, prepared=None):
        with Stopwatch() as watch:
            flooded = similarity_flooding(
                graph1,
                graph2,
                mat,
                formula=self.formula,
                max_iterations=self.max_iterations,
            )
            judge = mat if self.decision == "initial" else flooded.matrix
            quality, mapping = _similarity_only_quality(
                graph1, flooded.matrix, judge, xi
            )
        return MatchOutcome(
            matcher=self.name,
            quality=quality,
            elapsed_seconds=watch.elapsed,
            mapping=mapping,
            extra={
                "iterations": flooded.iterations,
                "pcg_pairs": flooded.num_pairs,
                "pcg_edges": flooded.num_propagation_edges,
            },
        )


class VertexSimilarityMatcher(Matcher):
    """Blondel et al. vertex similarity [6] under the same decision rule.

    The hub/authority scores carry no content signal, so they rank the
    alignment and the input ``mat`` judges it, as for SF.
    """

    name = "vertexSim"

    def run(self, graph1, graph2, mat, xi, prepared=None):
        with Stopwatch() as watch:
            result = blondel_vertex_similarity(graph1, graph2)
            quality, mapping = _similarity_only_quality(
                graph1, result.matrix, mat, xi
            )
        return MatchOutcome(
            matcher=self.name,
            quality=quality,
            elapsed_seconds=watch.elapsed,
            mapping=mapping,
            extra={"iterations": result.iterations},
        )


def default_matchers(pick: str = "similarity") -> list[Matcher]:
    """The paper's four algorithms (Figures 5–6 line-up).

    ``pick`` selects greedyMatch's candidate rule, see
    :class:`PHomMatcher`; ``"arbitrary"`` is the paper-faithful pick.
    """
    return [
        PHomMatcher("cardinality", False, pick),
        PHomMatcher("cardinality", True, pick),
        PHomMatcher("similarity", False, pick),
        PHomMatcher("similarity", True, pick),
    ]


def paper_table3_matchers(mcs_budget_seconds: float = 10.0) -> list[Matcher]:
    """The Table 3 line-up: our four algorithms plus SF and cdkMCS."""
    return default_matchers() + [
        FloodingMatcher(),
        MCSMatcher(budget_seconds=mcs_budget_seconds),
    ]
