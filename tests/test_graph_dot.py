"""Tests for the DOT export."""

from repro.graph.digraph import DiGraph
from repro.graph.dot import matching_to_dot, to_dot


def test_to_dot_structure():
    graph = DiGraph.from_edges([("a", "b")], labels={"a": "LA"})
    dot = to_dot(graph, name="demo")
    assert dot.startswith('digraph "demo" {')
    assert '"a" -> "b";' in dot
    assert "a: LA" in dot  # divergent label rendered
    assert dot.rstrip().endswith("}")


def test_to_dot_quotes_special_characters():
    graph = DiGraph.from_edges([('we"ird', "b")])
    dot = to_dot(graph)
    assert '\\"' in dot


def test_matching_to_dot_clusters_and_mapping():
    pattern = DiGraph.from_edges([("a", "b")])
    data = DiGraph.from_edges([("x", "y")])
    dot = matching_to_dot(pattern, data, {"a": "x"})
    assert "cluster_pattern" in dot and "cluster_data" in dot
    assert '"p_a" -> "d_x"' in dot  # the mapping edge
    assert "lightblue" in dot  # matched pattern node is highlighted
    assert '"p_b"' in dot and "lightblue" not in dot.split('"p_b"')[1].split("]")[0]


def test_matching_to_dot_disjoint_namespaces():
    shared = DiGraph.from_edges([("n", "m")])
    dot = matching_to_dot(shared, shared, {"n": "n"})
    assert '"p_n"' in dot and '"d_n"' in dot
