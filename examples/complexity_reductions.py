"""The NP-hardness reductions of Theorem 4.1, run as programs.

Builds the paper's Fig. 7 instance (3SAT → p-hom on DAGs) for a small
formula and the Fig. 8 instance (X3C → 1-1 p-hom with a tree pattern),
solves both sides — brute force on the source problem, exact p-hom
decision on the target — and shows the answers coincide, extracting the
satisfying assignment / exact cover back out of the graph mapping.

Run: ``python examples/complexity_reductions.py``
"""

from repro.complexity import (
    ThreeSatInstance,
    X3CInstance,
    brute_force_sat,
    brute_force_x3c,
    mapping_to_assignment,
    mapping_to_cover,
    reduce_3sat_to_phom,
    reduce_x3c_to_injective_phom,
)
from repro.core import find_phom_mapping, is_phom


def sat_demo() -> None:
    print("== Theorem 4.1(a): 3SAT -> p-hom (both graphs DAGs) ==")
    # The running example of the paper's proof: C1 = x1 v x2 v ~x3,
    # C2 = ~x2 v x3 v x4.
    phi = ThreeSatInstance(4, ((1, 2, -3), (-2, 3, 4)))
    print(f"formula: (x1 v x2 v ~x3) & (~x2 v x3 v x4)")
    instance = reduce_3sat_to_phom(phi)
    print(
        f"reduced: G1 has {instance.graph1.num_nodes()} nodes, "
        f"G2 has {instance.graph2.num_nodes()} nodes, xi = {instance.xi}"
    )
    model = brute_force_sat(phi)
    print(f"brute-force SAT: {'satisfiable' if model else 'unsatisfiable'}")
    mapping = find_phom_mapping(instance.graph1, instance.graph2, instance.mat, instance.xi)
    print(f"p-hom decision:  {'mapping found' if mapping else 'no mapping'}")
    assignment = mapping_to_assignment(phi, mapping)
    print(f"assignment extracted from the mapping: {assignment}")
    assert phi.evaluate(assignment)

    # An unsatisfiable formula maps to a non-matching instance.
    contradiction = ThreeSatInstance(
        3,
        tuple(
            (s1 * 1, s2 * 2, s3 * 3)
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        ),
    )
    reduced = reduce_3sat_to_phom(contradiction)
    print(
        "all-polarity contradiction -> p-hom exists: "
        f"{is_phom(reduced.graph1, reduced.graph2, reduced.mat, reduced.xi)}"
    )


def x3c_demo() -> None:
    print("\n== Theorem 4.1(b): X3C -> 1-1 p-hom (tree pattern, DAG data) ==")
    # The paper's example: X = {X11..X23}, S = {C1, C2, C3},
    # C1 = {0,1,2}, C2 = {0,1,3}, C3 = {3,4,5}.
    instance = X3CInstance(
        2,
        (
            frozenset({0, 1, 2}),
            frozenset({0, 1, 3}),
            frozenset({3, 4, 5}),
        ),
    )
    print("collection: {0,1,2}, {0,1,3}, {3,4,5}  over X = {0..5}")
    cover = brute_force_x3c(instance)
    print(f"brute-force exact cover: triples {cover}")
    reduced = reduce_x3c_to_injective_phom(instance)
    mapping = find_phom_mapping(
        reduced.graph1, reduced.graph2, reduced.mat, reduced.xi, injective=True
    )
    print(f"1-1 p-hom decision: {'mapping found' if mapping else 'no mapping'}")
    print(f"cover extracted from the mapping: {mapping_to_cover(instance, mapping)}")


def main() -> None:
    sat_demo()
    x3c_demo()


if __name__ == "__main__":
    main()
