"""Tests for the Appendix-B optimizations: partitioning and compression."""

import pytest

from repro.core.comp_max_card import comp_max_card, comp_max_card_injective
from repro.core.optimize import (
    comp_max_card_compressed,
    comp_max_card_partitioned,
    compress_data_graph,
    pattern_components,
)
from repro.core.phom import check_phom_mapping
from repro.core.workspace import MatchingWorkspace
from repro.graph.digraph import DiGraph
from repro.similarity.labels import label_equality_matrix
from repro.similarity.matrix import SimilarityMatrix

from helpers import make_random_instance


class TestPartitioning:
    def test_figure_10a_components(self):
        """Removing candidate-free C splits the pattern into components."""
        g1 = DiGraph.from_edges(
            [("A", "B"), ("A", "C"), ("C", "D"), ("C", "E"),
             ("D", "F"), ("E", "G"), ("F", "G")]
        )
        g2 = DiGraph.from_edges([], nodes=["x"])
        mat = SimilarityMatrix()
        for node in ("A", "B", "D", "E", "F", "G"):
            mat.set(node, "x", 1.0)  # everyone except C has a candidate
        workspace = MatchingWorkspace(g1, g2, mat, 0.5)
        components, removed = pattern_components(workspace)
        removed_nodes = {workspace.nodes1[v] for v in removed}
        assert removed_nodes == {"C"}
        component_sets = {
            frozenset(workspace.nodes1[v] for v in comp) for comp in components
        }
        assert frozenset({"A", "B"}) in component_sets
        assert frozenset({"D", "F", "G", "E"}) in component_sets

    @pytest.mark.parametrize("seed", range(15))
    def test_partitioned_output_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = comp_max_card_partitioned(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5) == []

    @pytest.mark.parametrize("seed", range(15))
    def test_partitioned_injective_valid(self, seed):
        g1, g2, mat = make_random_instance(seed)
        result = comp_max_card_partitioned(g1, g2, mat, 0.5, injective=True)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5, injective=True) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_partitioned_matches_unpartitioned_quality(self, seed):
        """Proposition 1: per-component union is as good as the whole run."""
        g1, g2, mat = make_random_instance(seed, n1=6, n2=7)
        whole = comp_max_card(g1, g2, mat, 0.5)
        parts = comp_max_card_partitioned(g1, g2, mat, 0.5)
        # Both are heuristics; partitioning must not lose quality on these
        # instances (it can only help by the paper's bound argument).
        assert parts.qual_card >= whole.qual_card - 1e-9

    def test_single_node_component_best_candidate(self):
        g1 = DiGraph.from_edges([], nodes=["solo"])
        g2 = DiGraph.from_edges([], nodes=["u1", "u2"])
        mat = SimilarityMatrix.from_pairs({("solo", "u1"): 0.6, ("solo", "u2"): 0.9})
        result = comp_max_card_partitioned(g1, g2, mat, 0.5)
        assert result.mapping == {"solo": "u2"}

    def test_stats_report_components(self):
        g1 = DiGraph.from_edges([("a", "b")], nodes=["c"])
        g2 = DiGraph.from_edges([("x", "y")])
        mat = SimilarityMatrix.from_pairs(
            {("a", "x"): 1.0, ("b", "y"): 1.0, ("c", "x"): 1.0}
        )
        result = comp_max_card_partitioned(g1, g2, mat, 0.5)
        assert result.stats["components"] == 2
        assert result.stats["candidate_free"] == 0

    def test_pick_rule_reaches_single_node_shortcut(self):
        """Regression: the pick rule used to be ignored entirely."""
        g1 = DiGraph.from_edges([], nodes=["solo"])
        g2 = DiGraph.from_edges([], nodes=["u1", "u2"])
        mat = SimilarityMatrix.from_pairs({("solo", "u1"): 0.6, ("solo", "u2"): 0.9})
        by_sim = comp_max_card_partitioned(g1, g2, mat, 0.5, pick="similarity")
        assert by_sim.mapping == {"solo": "u2"}
        arbitrary = comp_max_card_partitioned(g1, g2, mat, 0.5, pick="arbitrary")
        assert arbitrary.mapping == {"solo": "u1"}  # lowest index, like the engine

    @pytest.mark.parametrize("seed", range(5))
    def test_pick_rule_forwarded_to_engine(self, seed):
        """Partitioned and unpartitioned agree per pick rule; both valid."""
        g1, g2, mat = make_random_instance(seed, n1=6, n2=7)
        for pick in ("similarity", "arbitrary"):
            parts = comp_max_card_partitioned(g1, g2, mat, 0.5, pick=pick)
            assert check_phom_mapping(g1, g2, parts.mapping, mat, 0.5) == []
            whole = comp_max_card(g1, g2, mat, 0.5, pick=pick)
            assert parts.qual_card >= whole.qual_card - 1e-9

    def test_unknown_pick_rejected_before_work(self):
        g1, g2, mat = make_random_instance(0)
        with pytest.raises(ValueError):
            comp_max_card_partitioned(g1, g2, mat, 0.5, pick="best")


class TestCompression:
    def test_figure_10b_compression(self):
        """An SCC collapses to one bag node with a self-loop."""
        g2 = DiGraph.from_edges(
            [("A", "B"), ("B", "C"), ("C", "A"), ("C", "D")],
        )
        compressed = compress_data_graph(g2)
        star = compressed.star
        bags = {frozenset(members) for members in compressed.members}
        assert frozenset({"A", "B", "C"}) in bags
        assert frozenset({"D"}) in bags
        abc = compressed.component_of["A"]
        d = compressed.component_of["D"]
        assert star.has_self_loop(abc)
        assert not star.has_self_loop(d)
        assert star.has_edge(abc, d)

    def test_compressed_matrix_takes_max(self):
        g2 = DiGraph.from_edges([("A", "B"), ("B", "A")])
        g1 = DiGraph.from_edges([], nodes=["v"])
        mat = SimilarityMatrix.from_pairs({("v", "A"): 0.4, ("v", "B"): 0.9})
        compressed = compress_data_graph(g2)
        mat_star = compressed.compressed_matrix(mat, g1)
        cid = compressed.component_of["A"]
        assert mat_star("v", cid) == 0.9

    @pytest.mark.parametrize("seed", range(15))
    def test_compressed_output_valid_on_original(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=5, n2=8, density=0.35)
        result = comp_max_card_compressed(g1, g2, mat, 0.5)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5) == []

    @pytest.mark.parametrize("seed", range(15))
    def test_compressed_injective_valid_on_original(self, seed):
        g1, g2, mat = make_random_instance(seed, n1=5, n2=8, density=0.35)
        result = comp_max_card_compressed(g1, g2, mat, 0.5, injective=True)
        assert check_phom_mapping(g1, g2, result.mapping, mat, 0.5, injective=True) == []

    def test_cycle_heavy_graph_compresses_well(self):
        # One big cycle: G2* is a single bag; any tree pattern fits inside.
        g2 = DiGraph.from_edges([(i, (i + 1) % 6) for i in range(6)])
        g1 = DiGraph.from_edges([("a", "b"), ("b", "c")])
        mat = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2.nodes():
                mat.set(v, u, 1.0)
        result = comp_max_card_compressed(g1, g2, mat, 0.5, injective=True)
        assert result.qual_card == 1.0
        assert result.stats["bags"] == 1
        assert len(set(result.mapping.values())) == 3  # distinct members

    def test_injective_capacity_respects_bag_size(self):
        # Bag of size 2: at most two pattern nodes can land in it.
        g2 = DiGraph.from_edges([("A", "B"), ("B", "A")])
        g1 = DiGraph.from_edges([], nodes=["x", "y", "z"])
        mat = SimilarityMatrix()
        for v in g1.nodes():
            for u in g2.nodes():
                mat.set(v, u, 1.0)
        result = comp_max_card_compressed(g1, g2, mat, 0.5, injective=True)
        assert len(result.mapping) == 2
        assert len(set(result.mapping.values())) == 2

    def test_compression_equivalent_quality_on_label_graphs(self, fig2_pairs):
        g1, g2 = fig2_pairs["g1"], fig2_pairs["g2"]
        mat = label_equality_matrix(g1, g2)
        plain = comp_max_card(g1, g2, mat, 0.5)
        squeezed = comp_max_card_compressed(g1, g2, mat, 0.5)
        assert squeezed.qual_card == plain.qual_card == 1.0
