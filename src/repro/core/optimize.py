"""Appendix-B optimization techniques: pattern partitioning, data compression.

**Partitioning G1** (paper Fig. 10(a), Proposition 1): pattern nodes with
no candidate at all cannot contribute to any mapping, so the pattern is
restricted to the rest and split into pairwise disconnected (weakly
connected) components; each component is solved independently and the
mappings are unioned.  A single-node component is matched directly to its
best candidate.  Beyond speed, partitioning *improves* the approximation
guarantee — the bound log²n/n worsens with n, so solving smaller pieces
helps (the paper's observation about y = log²n/n being decreasing past e²).

For the 1-1 variants, a naive union could map two components onto the same
data node.  Proposition 1 is stated for p-hom; we keep the 1-1 variant
sound by solving components sequentially and excluding the data nodes
already consumed by earlier components (a documented, conservative
deviation — tests assert validity, and the ablation bench measures the
effect).

**Compressing G2⁺** (paper Fig. 10(b)): every SCC of ``G2`` is a clique of
``G2⁺``; the compressed graph ``G2*`` replaces each SCC by a single
bag-of-labels node with a self-loop.  Matching runs against ``G2*`` and the
result is *decompressed*: each pattern node mapped to a bag picks a
concrete member with ``mat ≥ ξ``.  For 1-1 mappings a bag of k members may
absorb up to k pattern nodes (the engine's capacity mechanism), and
decompression assigns distinct members via bipartite matching, dropping
pattern nodes only when member-level similarity makes a bag's quota
unrealisable (Hall violations — counted in the stats).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.backends.bitops import exclude, has_bit, lowest_set_bit, set_bit
from repro.core.engine import PICK_RULES, comp_max_card_engine
from repro.core.phom import PHomResult
from repro.core.prepared import PreparedDataGraph
from repro.core.quality import qual_card, qual_sim
from repro.core.workspace import MatchingWorkspace
from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.timing import Stopwatch

__all__ = [
    "plan_components",
    "pattern_components",
    "solve_component",
    "comp_max_card_partitioned",
    "CompressedDataGraph",
    "compress_data_graph",
    "comp_max_card_compressed",
]

Node = Hashable


# ----------------------------------------------------------------------
# Partitioning G1
# ----------------------------------------------------------------------
def plan_components(
    num_nodes: int,
    prev: list[list[int]],
    post: list[list[int]],
    has_candidates: list[bool],
) -> tuple[list[list[int]], list[int]]:
    """The Proposition-1 component plan over pattern-node indices.

    ``prev``/``post`` are the pattern adjacency lists (as built by
    :class:`~repro.core.workspace.MatchingWorkspace`), ``has_candidates``
    flags the nodes with at least one ξ-feasible candidate.  Returns
    ``(components, removed)``: ``removed`` are the candidate-free nodes
    (the set S1 of the paper), and ``components`` partitions the rest by
    weak connectivity in ``G1[V1 \\ S1]``.

    This is *the* planner — the single-process partitioned solve and the
    sharded router (:mod:`repro.core.sharding`) both call it, so their
    component lists (order included: components in first-seen root order,
    members in BFS order) are identical by construction.  Order matters:
    the injective merge threads a used-node exclusion through components
    sequentially, so a different component order is a different result.
    """
    keep = {v for v in range(num_nodes) if has_candidates[v]}
    removed = [v for v in range(num_nodes) if v not in keep]
    seen: set[int] = set()
    components: list[list[int]] = []
    for root in range(num_nodes):
        if root not in keep or root in seen:
            continue
        component: list[int] = []
        queue: deque[int] = deque([root])
        seen.add(root)
        while queue:
            v = queue.popleft()
            component.append(v)
            for other in prev[v] + post[v]:
                if other in keep and other not in seen:
                    seen.add(other)
                    queue.append(other)
        components.append(component)
    return components, removed


def pattern_components(workspace: MatchingWorkspace) -> tuple[list[list[int]], list[int]]:
    """Split the candidate-bearing pattern nodes into weak components.

    A :func:`plan_components` view over a built workspace — see there for
    the ``(components, removed)`` contract.
    """
    return plan_components(
        len(workspace.nodes1),
        workspace.prev,
        workspace.post,
        [bool(mask) for mask in workspace.cand_mask],
    )


def solve_component(
    workspace: MatchingWorkspace,
    component: list[int],
    used_mask: int,
    injective: bool,
    pick: str,
) -> tuple[list[tuple[int, int]], int]:
    """Solve one planned component against ``workspace``'s data graph.

    Returns ``(pairs, rounds)`` with pairs as ``(v_idx, u_idx)`` under
    the workspace's indexing.  ``used_mask`` excludes data nodes already
    consumed by earlier components (the injective merge's sequential
    exclusion; pass 0 otherwise).  Single-node components short-cut to
    their best candidate — the paper's "a match is simply {(v, u)} where
    mat(v, u) is best"; under the arbitrary rule, any candidate (lowest
    index).  Shared by :func:`comp_max_card_partitioned` and the sharded
    router, which runs it on a shard-local workspace.
    """
    if len(component) == 1:
        v = component[0]
        mask = exclude(workspace.cand_mask[v], used_mask)
        if not mask:
            return [], 0
        chosen = None
        if pick == "similarity":
            chosen = next((u for u in workspace.pref[v] if has_bit(mask, u)), None)
        if chosen is None:
            chosen = lowest_set_bit(mask)
        return [(v, chosen)], 0
    initial = {
        v: masked
        for v in component
        if (masked := exclude(workspace.cand_mask[v], used_mask))
    }
    pairs, stats = comp_max_card_engine(
        workspace, initial, injective=injective, pick=pick
    )
    return pairs, stats["rounds"]


def comp_max_card_partitioned(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    injective: bool = False,
    pick: str = "similarity",
    prepared: PreparedDataGraph | None = None,
    backend=None,
    candidate_rows=None,
    prefilter: str | None = None,
) -> PHomResult:
    """compMaxCard with the Appendix-B partitioning optimization.

    Each weakly connected component of the candidate-bearing pattern is
    solved independently (Proposition 1); single-node components short-cut
    to their best candidate.  With ``injective`` the components are solved
    sequentially with used data nodes excluded.  ``pick`` selects the
    candidate rule exactly as in :func:`~repro.core.comp_max_card.comp_max_card`
    — it governs both the engine runs and the single-node short-cut.
    ``prepared`` reuses a pre-built data-graph index (see
    :mod:`repro.core.prepared`); ``backend`` selects the solver mask
    representation for every component's engine run.  ``candidate_rows``
    hands down pre-computed ξ/cycle-filtered rows (the prefilter's gated
    fast path); ``prefilter="strict"`` engages sketch pair pruning in
    the workspace and reports ``pairs_pruned`` in the result stats.
    """
    if pick not in PICK_RULES:
        raise ValueError(f"unknown pick rule {pick!r}; choose one of {PICK_RULES}")
    with Stopwatch() as watch:
        workspace = MatchingWorkspace(
            graph1,
            graph2,
            mat,
            xi,
            prepared=prepared,
            backend=backend,
            candidate_rows=candidate_rows,
            prefilter=prefilter,
        )
        components, removed = pattern_components(workspace)
        all_pairs: list[tuple[int, int]] = []
        used_mask = 0
        rounds = 0
        for component in components:
            pairs, component_rounds = solve_component(
                workspace, component, used_mask, injective, pick
            )
            rounds += component_rounds
            all_pairs.extend(pairs)
            if injective:
                for _, u in pairs:
                    used_mask = set_bit(used_mask, u)
    stats = {
        "components": len(components),
        "candidate_free": len(removed),
        "rounds": rounds,
        "elapsed_seconds": watch.elapsed,
    }
    if prefilter == "strict":
        # Strict results are the approximate tier — their stats may
        # carry the extra key (off/auto stats stay byte-identical).
        stats["pairs_pruned"] = workspace.pairs_pruned
    return PHomResult(
        mapping=workspace.mapping_to_nodes(all_pairs),
        qual_card=workspace.qual_card_of(all_pairs),
        qual_sim=workspace.qual_sim_of(all_pairs),
        injective=injective,
        stats=stats,
    )


# ----------------------------------------------------------------------
# Compressing G2+
# ----------------------------------------------------------------------
class CompressedDataGraph:
    """``G2*``: the SCC-compressed transitive closure of a data graph.

    Nodes are integer SCC ids.  Each carries the *bag* of its members'
    labels; an SCC with an internal cycle gets a self-loop (its members
    reach themselves and each other by nonempty paths).  ``G2*`` edges
    follow the condensation DAG, so the reachability of ``G2*`` agrees
    with that of ``G2⁺`` at bag granularity.
    """

    def __init__(self, graph2: DiGraph) -> None:
        self.original = graph2
        cond = Condensation(graph2)
        self.members: list[list[Node]] = [list(members) for members in cond.components]
        self.component_of: dict[Node, int] = dict(cond.component_of)
        star = DiGraph(name=f"{graph2.name}*" if graph2.name else "G2*")
        for cid, members in enumerate(self.members):
            star.add_node(
                cid,
                label=tuple(sorted((repr(graph2.label(m)) for m in members))),
            )
        for cid in range(len(self.members)):
            if cond.has_internal_cycle(cid):
                star.add_edge(cid, cid)
            for succ in cond.successors(cid):
                star.add_edge(cid, succ)
        self.star = star

    def compressed_matrix(self, mat: SimilarityMatrix, graph1: DiGraph) -> SimilarityMatrix:
        """``mat*(v, cid) = max over members u of cid of mat(v, u)``."""
        mat_star = SimilarityMatrix()
        for v in graph1.nodes():
            for u, score in mat.row(v).items():
                cid = self.component_of.get(u)
                if cid is None:
                    continue
                if score > mat_star(v, cid):
                    mat_star.set(v, cid, score)
        return mat_star

    def capacities_for(self, workspace: MatchingWorkspace) -> dict[int, int]:
        """Per-bag 1-1 capacities: a bag may absorb up to |members| nodes."""
        return {
            workspace.index2[cid]: len(self.members[cid])
            for cid in range(len(self.members))
            if cid in workspace.index2
        }


def compress_data_graph(graph2: DiGraph) -> CompressedDataGraph:
    """Build the Appendix-B compressed data graph of ``graph2``."""
    return CompressedDataGraph(graph2)


def _decompress_phom(
    compressed: CompressedDataGraph,
    mat: SimilarityMatrix,
    xi: float,
    star_mapping: dict[Node, int],
) -> dict[Node, Node]:
    """Pick the best ξ-feasible member per bag assignment (p-hom case)."""
    mapping: dict[Node, Node] = {}
    for v, cid in star_mapping.items():
        best_u = None
        best_score = -1.0
        for u in compressed.members[cid]:
            score = mat(v, u)
            if score >= xi and score > best_score:
                best_u = u
                best_score = score
        if best_u is not None:  # guaranteed: mat*(v, cid) ≥ ξ implies a member
            mapping[v] = best_u
    return mapping


def _decompress_injective(
    compressed: CompressedDataGraph,
    mat: SimilarityMatrix,
    xi: float,
    star_mapping: dict[Node, int],
) -> tuple[dict[Node, Node], int]:
    """Assign distinct members per bag via bipartite matching (Kuhn's).

    Returns the mapping and the number of pattern nodes dropped because a
    bag's quota was unrealisable at member level (Hall violations).
    """
    by_bag: dict[int, list[Node]] = {}
    for v, cid in star_mapping.items():
        by_bag.setdefault(cid, []).append(v)

    mapping: dict[Node, Node] = {}
    dropped = 0
    for cid, pattern_nodes in by_bag.items():
        members = compressed.members[cid]
        feasible = {
            v: [u for u in members if mat(v, u) >= xi] for v in pattern_nodes
        }
        # Kuhn's augmenting-path matching: member -> pattern node.
        owner: dict[Node, Node] = {}

        def try_assign(v: Node, visited: set[Node]) -> bool:
            for u in feasible[v]:
                if u in visited:
                    continue
                visited.add(u)
                if u not in owner or try_assign(owner[u], visited):
                    owner[u] = v
                    return True
            return False

        # Hardest-to-place first improves the greedy augmenting order.
        for v in sorted(pattern_nodes, key=lambda x: len(feasible[x])):
            if not try_assign(v, set()):
                dropped += 1
        for u, v in owner.items():
            mapping[v] = u
    return mapping, dropped


def comp_max_card_compressed(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    injective: bool = False,
    backend=None,
) -> PHomResult:
    """compMaxCard against the SCC-compressed data graph, then decompress.

    Matches on ``G2*`` (often dramatically smaller than ``G2⁺`` when the
    data graph has large SCCs) and lifts the bag-level mapping back to
    concrete ``G2`` nodes.  Quality is computed against the original graph
    and matrix, so results are directly comparable with the uncompressed
    algorithm.
    """
    with Stopwatch() as watch:
        compressed = compress_data_graph(graph2)
        mat_star = compressed.compressed_matrix(mat, graph1)
        workspace = MatchingWorkspace(
            graph1, compressed.star, mat_star, xi, backend=backend
        )
        capacities = compressed.capacities_for(workspace) if injective else None
        pairs, stats = comp_max_card_engine(
            workspace,
            workspace.initial_good(),
            injective=injective,
            capacities=capacities,
        )
        star_mapping = {
            workspace.nodes1[v]: workspace.nodes2[u] for v, u in pairs
        }
        if injective:
            mapping, dropped = _decompress_injective(compressed, mat, xi, star_mapping)
        else:
            mapping = _decompress_phom(compressed, mat, xi, star_mapping)
            dropped = len(star_mapping) - len(mapping)
    return PHomResult(
        mapping=mapping,
        qual_card=qual_card(mapping, graph1),
        qual_sim=qual_sim(mapping, graph1, mat),
        injective=injective,
        stats={
            "bags": len(compressed.members),
            "hall_drops": dropped,
            "rounds": stats["rounds"],
            "elapsed_seconds": watch.elapsed,
        },
    )
