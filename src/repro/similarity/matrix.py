"""The node-similarity matrix ``mat()`` of Section 3.1.

For graphs ``G1 = (V1, E1, L1)`` and ``G2 = (V2, E2, L2)`` the paper assumes
a matrix ``mat()`` assigning each pair ``(v, u) ∈ V1 × V2`` a similarity in
``[0, 1]``; a node ``v`` may map to ``u`` only when ``mat(v, u) ≥ ξ`` for a
threshold ``ξ``.

:class:`SimilarityMatrix` stores the matrix sparsely (absent pairs are 0.0,
which is by far the common case: shingle and grouped-label similarities are
zero for most pairs) and precomputes per-``v`` candidate lookups, the hot
query of every matching algorithm.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping

from repro.utils.errors import InputError

__all__ = ["SimilarityMatrix"]

Node = Hashable


class SimilarityMatrix:
    """A sparse ``mat(v, u) ∈ [0, 1]`` similarity table.

    >>> mat = SimilarityMatrix.from_pairs({("a", "x"): 0.9, ("a", "y"): 0.4})
    >>> mat("a", "x")
    0.9
    >>> mat("a", "z")
    0.0
    >>> sorted(mat.candidates("a", 0.5))
    ['x']
    """

    def __init__(self) -> None:
        self._rows: dict[Node, dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Mapping[tuple[Node, Node], float]) -> "SimilarityMatrix":
        """Build from a ``{(v, u): similarity}`` mapping."""
        mat = cls()
        for (v, u), score in pairs.items():
            mat.set(v, u, score)
        return mat

    @classmethod
    def from_function(
        cls,
        nodes1: Iterable[Node],
        nodes2: Iterable[Node],
        score: Callable[[Node, Node], float],
        keep_zero: bool = False,
    ) -> "SimilarityMatrix":
        """Evaluate ``score(v, u)`` over the cross product and store the result.

        Zero scores are dropped unless ``keep_zero`` — they are semantically
        identical to absent entries and dropping keeps the matrix sparse.
        """
        mat = cls()
        targets = list(nodes2)
        for v in nodes1:
            for u in targets:
                value = score(v, u)
                if value != 0.0 or keep_zero:
                    mat.set(v, u, value)
        return mat

    def set(self, v: Node, u: Node, score: float) -> None:
        """Set ``mat(v, u) = score`` (must lie in [0, 1])."""
        if not 0.0 <= score <= 1.0:
            raise InputError(f"similarity mat({v!r}, {u!r}) = {score!r} outside [0, 1]")
        self._rows.setdefault(v, {})[u] = float(score)

    def update(self, pairs: Mapping[tuple[Node, Node], float]) -> None:
        """Set every pair of ``pairs``."""
        for (v, u), score in pairs.items():
            self.set(v, u, score)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __call__(self, v: Node, u: Node) -> float:
        """``mat(v, u)``; absent pairs score 0.0."""
        row = self._rows.get(v)
        if row is None:
            return 0.0
        return row.get(u, 0.0)

    def get(self, v: Node, u: Node, default: float = 0.0) -> float:
        """``mat(v, u)`` with an explicit default for absent pairs."""
        row = self._rows.get(v)
        if row is None:
            return default
        return row.get(u, default)

    def row(self, v: Node) -> dict[Node, float]:
        """The non-zero entries for pattern node ``v`` (read-only by convention)."""
        return self._rows.get(v, {})

    def candidates(self, v: Node, xi: float) -> set[Node]:
        """``{u : mat(v, u) ≥ ξ}`` — the initial ``H[v].good`` of the paper.

        A threshold of 0 is rejected: it would make *every* node of ``G2`` a
        candidate (absent pairs score 0 ≥ 0), which is never intended and
        silently destroys performance.
        """
        if xi <= 0.0:
            raise InputError("similarity threshold xi must be positive")
        return {u for u, score in self._rows.get(v, {}).items() if score >= xi}

    def pairs(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate all stored ``(v, u, score)`` entries."""
        for v, row in self._rows.items():
            for u, score in row.items():
                yield (v, u, score)

    def num_pairs(self) -> int:
        """Number of stored entries."""
        return sum(len(row) for row in self._rows.values())

    def max_score(self) -> float:
        """The largest stored similarity (0.0 when empty)."""
        best = 0.0
        for row in self._rows.values():
            for score in row.values():
                if score > best:
                    best = score
        return best

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def transposed(self) -> "SimilarityMatrix":
        """Swap the roles of the two graphs: ``mat'(u, v) = mat(v, u)``."""
        flipped = SimilarityMatrix()
        for v, u, score in self.pairs():
            flipped.set(u, v, score)
        return flipped

    def thresholded(self, xi: float) -> "SimilarityMatrix":
        """Keep only the pairs with ``score ≥ ξ``."""
        kept = SimilarityMatrix()
        for v, u, score in self.pairs():
            if score >= xi:
                kept.set(v, u, score)
        return kept

    def saturated(self, xi: float) -> "SimilarityMatrix":
        """The ``mat'`` of the paper's Corollary 4.2 reduction.

        Every pair at or above the threshold is promoted to similarity 1.0;
        the rest keep their scores.  Decision problems over ``(mat, ξ)`` and
        ``(mat', ξ)`` coincide, while ``qualSim`` over ``mat'`` counts
        matched nodes — the trick that reduces the decision problem to the
        optimization problems.
        """
        promoted = SimilarityMatrix()
        for v, u, score in self.pairs():
            promoted.set(v, u, 1.0 if score >= xi else score)
        return promoted

    def restricted(self, keep1: Iterable[Node], keep2: Iterable[Node]) -> "SimilarityMatrix":
        """Project the matrix onto ``keep1 × keep2`` (for skeleton matching)."""
        set1 = set(keep1)
        set2 = set(keep2)
        projected = SimilarityMatrix()
        for v, u, score in self.pairs():
            if v in set1 and u in set2:
                projected.set(v, u, score)
        return projected

    def __repr__(self) -> str:
        return f"<SimilarityMatrix pairs={self.num_pairs()}>"
