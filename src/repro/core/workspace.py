"""Indexed workspace shared by the matching algorithms.

``compMaxCard`` (paper Fig. 3) precomputes, before its greedy loop:

* an adjacency list ``H1`` for the pattern (``prev`` / ``post`` per node,
  lines 1–3);
* the initial matching list ``H`` with
  ``H[v].good = {u : mat(v, u) ≥ ξ}`` (line 4); and
* the adjacency matrix ``H2`` of the transitive closure ``G2⁺``
  (lines 5–7).

:class:`MatchingWorkspace` is that precomputation with dense integer node
indices and bitmask rows:

* ``from_mask[u]`` — bitmask of data nodes reachable *from* ``u`` by a
  nonempty path (a row of ``H2``);
* ``to_mask[u]`` — bitmask of data nodes that can *reach* ``u`` (a column
  of ``H2``, obtained as a row of the reversed graph's index), which turns
  ``trimMatching``'s "prune candidates of v's parents" into one AND;
* ``cand_mask[v]`` — the initial ``H[v].good`` as a bitmask.  Nodes with a
  self-loop in the pattern are restricted to data nodes lying on a cycle,
  matching condition (b) of the product-graph construction in the proof of
  Theorem 5.1 (an edge ``(v, v)`` must map to a nonempty path
  ``σ(v) ⇝ σ(v)``).

Since the prepared/session split, the *data-graph* half of this
precomputation (node indexing, ``from_mask``/``to_mask``/``cycle_mask`` —
the paper's lines 5–7) lives in
:class:`~repro.core.prepared.PreparedDataGraph` and is only *referenced*
here.  A workspace built with an explicit ``prepared`` index is therefore
a thin pattern-side view: construction touches ``G1`` and the similarity
rows only, never the SCC condensation of ``G2``.  Sessions and the
service (:mod:`repro.core.service`) exploit this to amortise data-graph
preparation across many patterns; a workspace built without ``prepared``
simply prepares privately and behaves exactly as before.

The workspace also carries the *solver backend*
(:mod:`repro.core.backends`) the engine will run on — ``backend=``
selects it (name or instance; default ``REPRO_BACKEND``, then the
big-int reference).  All workspace tables stay backend-neutral Python
ints; :meth:`MatchingWorkspace.engine_context` materialises (and caches)
the backend-native view on first use, so switching backends never
changes what a workspace *is*, only how the engine walks it.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.backends import SolverBackend, get_backend
from repro.core.phom import validate_threshold
from repro.core.prepared import PreparedDataGraph
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError

__all__ = ["MatchingWorkspace"]

Node = Hashable


class MatchingWorkspace:
    """Index structures for matching ``graph1`` against ``graph2``.

    ``prepared`` supplies a pre-built data-graph index (reachability
    bitmasks, node indexing, cycle mask).  When given, ``graph2`` may be
    ``None``; when both are given they must describe the same graph —
    callers that reuse a prepared index across content-equal graph
    objects (the service cache does) pass ``prepared`` alone.
    """

    def __init__(
        self,
        graph1: DiGraph,
        graph2: DiGraph | None,
        mat: SimilarityMatrix,
        xi: float,
        prepared: PreparedDataGraph | None = None,
        backend: "str | SolverBackend | None" = None,
        candidate_rows: "list[dict[Node, float]] | None" = None,
        partial_rows: bool = False,
        prefilter: str | None = None,
    ) -> None:
        validate_threshold(xi)
        #: The solver backend engine runs default to (resolved eagerly so
        #: a typo'd name fails here, not mid-solve).
        self.backend: SolverBackend = get_backend(backend)
        #: Backend-native engine contexts, built lazily per backend name
        #: (lazily on purpose: hop-bounded callers override the closure
        #: rows *after* construction, and the context must see that).
        self._engine_contexts: dict[str, object] = {}
        if prepared is None:
            if graph2 is None:
                raise InputError("MatchingWorkspace needs graph2 or a prepared index")
            prepared = PreparedDataGraph(graph2)
        elif graph2 is not None and graph2 is not prepared.graph:
            # Mismatch guard.  Counts alone are not enough: a different
            # graph with equal node/edge counts would silently produce
            # mappings onto the wrong graph's nodes.  The cheap checks
            # (counts, node enumeration — which fixes every mask's bit
            # meaning) run first so the common error reports precisely;
            # the fingerprint comparison then enforces the full content
            # contract (edge relation, labels, weights).  Same-object
            # callers — every internal prepared-reuse path — never reach
            # here, so the digest cost lands only on callers pairing a
            # prepared index with a *different* graph object.
            if (
                graph2.num_nodes() != prepared.num_nodes()
                or graph2.num_edges() != prepared.num_edges()
                or list(graph2.nodes()) != prepared.nodes2
            ):
                raise InputError("prepared index does not match the given data graph")
            if graph_fingerprint(graph2) != prepared.fingerprint:
                raise InputError(
                    "prepared index fingerprint does not match the given data graph"
                )
        self.prepared = prepared
        self.graph1 = graph1
        self.graph2 = prepared.graph if graph2 is None else graph2
        self.mat = mat
        self.xi = xi

        self.nodes1: list[Node] = list(graph1.nodes())
        self.index1: dict[Node, int] = {node: i for i, node in enumerate(self.nodes1)}

        # Pattern adjacency (H1 of the paper).
        self.prev: list[list[int]] = [
            [self.index1[p] for p in graph1.predecessors(v)] for v in self.nodes1
        ]
        self.post: list[list[int]] = [
            [self.index1[s] for s in graph1.successors(v)] for v in self.nodes1
        ]

        # Data-graph artifacts (H2 of the paper), shared by reference with
        # the prepared index — read-only from here on.
        self.nodes2: list[Node] = prepared.nodes2
        self.index2: dict[Node, int] = prepared.index2
        self.from_mask: list[int] = prepared.from_mask
        self.to_mask: list[int] = prepared.to_mask
        self.cycle_mask: int = prepared.cycle_mask

        # Candidates and per-pair scores (sparse: only pairs with mat ≥ ξ).
        # ``candidate_rows`` (one dict per pattern node, keyed by data-node
        # identifier, already ξ- and cycle-filtered, in similarity-row
        # iteration order) skips the similarity scan — the sharded router
        # computed exactly these rows for routing and hands them down so
        # the hot path scans each pattern's rows once, not twice.
        # ``partial_rows`` declares that the rows may name nodes outside
        # this data graph (a shard view holds a subset of the rows'
        # nodes) and such entries are silently dropped; without it an
        # unknown node is a caller error and raises.
        self.scores: list[dict[int, float]] = []
        self.cand_mask: list[int] = []
        self.pref: list[list[int]] = []
        #: Pairs removed by the strict prefilter (0 unless engaged).
        self.pairs_pruned: int = 0
        if candidate_rows is not None and len(candidate_rows) != len(self.nodes1):
            raise InputError(
                "candidate_rows must hold one row per pattern node "
                f"({len(self.nodes1)}), got {len(candidate_rows)}"
            )
        for v_idx, v in enumerate(self.nodes1):
            row: dict[int, float] = {}
            if candidate_rows is not None:
                for u, score in candidate_rows[v_idx].items():
                    u_idx = self.index2.get(u)
                    if u_idx is not None:
                        row[u_idx] = score
                    elif not partial_rows:
                        raise InputError(
                            f"candidate_rows[{v_idx}] names {u!r}, which is "
                            "not a node of the data graph (pass "
                            "partial_rows=True for shard-subset rows)"
                        )
            else:
                for u, score in mat.row(v).items():
                    u_idx = self.index2.get(u)
                    if u_idx is not None and score >= xi:
                        row[u_idx] = score
                if graph1.has_self_loop(v):
                    row = {u: s for u, s in row.items() if self.cycle_mask >> u & 1}
            self.scores.append(row)

        if prefilter == "strict":
            # The approximate tier: sketch-prune pairs whose data node
            # provably cannot cover the labels of the pattern node's
            # closure.  Mappings stay valid p-hom mappings; quality is
            # only guaranteed under a label-gated similarity source.
            from repro.core.prefilter import pattern_sketches, strict_filter_rows

            self.scores, self.pairs_pruned = strict_filter_rows(
                self.scores, pattern_sketches(graph1), prepared.sketches
            )

        for row in self.scores:
            mask = 0
            for u_idx in row:
                mask |= 1 << u_idx
            self.cand_mask.append(mask)
            # Candidate preference: highest similarity first, stable on index.
            self.pref.append(sorted(row, key=lambda u_idx: (-row[u_idx], u_idx)))

        self.weights1: list[float] = [graph1.weight(v) for v in self.nodes1]
        self.total_weight1: float = sum(self.weights1)

    # ------------------------------------------------------------------
    def engine_context(self, backend: SolverBackend) -> object:
        """The backend-native engine view of this workspace, cached.

        Built on first use so post-construction row overrides (the
        hop-bounded variant replaces ``from_mask``/``to_mask`` wholesale)
        are reflected.  Callers that mutate workspace tables *after* an
        engine run must build a fresh workspace — contexts are never
        invalidated, matching the read-only contract of prepared rows.
        """
        context = self._engine_contexts.get(backend.name)
        if context is None:
            context = backend.build_context(self)
            self._engine_contexts[backend.name] = context
        return context

    def num_candidate_pairs(self) -> int:
        """Total surviving (v, u) candidate pairs."""
        return sum(len(row) for row in self.scores)

    def initial_good(self) -> dict[int, int]:
        """The initial matching list: v index -> candidate bitmask (nonempty)."""
        return {v: mask for v, mask in enumerate(self.cand_mask) if mask}

    def pair_weight(self, v_idx: int, u_idx: int) -> float:
        """``w(v) · mat(v, u)`` — the node weight of [v, u] in the product graph."""
        return self.weights1[v_idx] * self.scores[v_idx][u_idx]

    def mapping_to_nodes(self, pairs) -> dict[Node, Node]:
        """Convert index pairs back to original node identifiers."""
        return {self.nodes1[v]: self.nodes2[u] for v, u in pairs}

    def qual_card_of(self, pairs) -> float:
        """``qualCard`` of a pair list (1.0 for an empty pattern)."""
        n1 = len(self.nodes1)
        if n1 == 0:
            return 1.0
        return len(pairs) / n1

    def qual_sim_of(self, pairs) -> float:
        """``qualSim`` of a pair list (1.0 for a zero-weight pattern)."""
        if self.total_weight1 == 0.0:
            return 1.0
        captured = sum(self.pair_weight(v, u) for v, u in pairs)
        return captured / self.total_weight1
