"""Tests for the matcher registry the experiment harness drives."""

import pytest

from repro.baselines.matchers import (
    FloodingMatcher,
    MCSMatcher,
    MatchOutcome,
    PHomMatcher,
    SimulationMatcher,
    VertexSimilarityMatcher,
    default_matchers,
    paper_table3_matchers,
)
from repro.graph.digraph import DiGraph
from repro.similarity.labels import label_equality_matrix
from repro.utils.errors import InputError

from helpers import make_random_instance


@pytest.fixture
def easy_pair():
    g1 = DiGraph.from_edges([("a", "b")], labels={"a": "A", "b": "B"})
    g2 = DiGraph.from_edges([("x", "y")], labels={"x": "A", "y": "B"})
    return g1, g2, label_equality_matrix(g1, g2)


class TestRegistry:
    def test_default_lineup_names(self):
        names = [m.name for m in default_matchers()]
        assert names == ["compMaxCard", "compMaxCard_1-1", "compMaxSim", "compMaxSim_1-1"]

    def test_table3_lineup_extends(self):
        names = [m.name for m in paper_table3_matchers()]
        assert "SF" in names and "cdkMCS" in names

    def test_invalid_phom_config(self):
        with pytest.raises(InputError):
            PHomMatcher("bogus", False)


class TestOutcomes:
    def test_phom_matcher_easy_pair(self, easy_pair):
        g1, g2, mat = easy_pair
        outcome = PHomMatcher("cardinality", False).run(g1, g2, mat, 0.5)
        assert isinstance(outcome, MatchOutcome)
        assert outcome.quality == 1.0
        assert outcome.matched(0.75)
        assert outcome.mapping == {"a": "x", "b": "y"}

    def test_all_matchers_produce_bounded_quality(self, easy_pair):
        g1, g2, mat = easy_pair
        matchers = paper_table3_matchers(mcs_budget_seconds=5.0) + [
            SimulationMatcher(),
            VertexSimilarityMatcher(),
        ]
        for matcher in matchers:
            outcome = matcher.run(g1, g2, mat, 0.5)
            assert 0.0 <= outcome.quality <= 1.0, matcher.name
            assert outcome.elapsed_seconds >= 0.0

    def test_simulation_binary_quality(self, easy_pair):
        g1, g2, mat = easy_pair
        outcome = SimulationMatcher().run(g1, g2, mat, 0.5)
        assert outcome.quality in (0.0, 1.0)
        assert "coverage" in outcome.extra

    def test_mcs_incomplete_not_matched(self):
        g1, g2, mat = make_random_instance(0, n1=10, n2=12, sim_density=0.9)
        outcome = MCSMatcher(budget_seconds=1e-9).run(g1, g2, mat, 0.3)
        assert not outcome.completed
        assert not outcome.matched(0.0)  # N/A never counts as a match

    def test_flooding_outcome_extras(self, easy_pair):
        g1, g2, mat = easy_pair
        outcome = FloodingMatcher().run(g1, g2, mat, 0.5)
        assert "pcg_pairs" in outcome.extra
        assert outcome.quality >= 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_phom_matchers_quality_equals_result_metric(self, seed):
        g1, g2, mat = make_random_instance(seed)
        card = PHomMatcher("cardinality", False).run(g1, g2, mat, 0.5)
        assert card.quality == card.extra["qual_card"]
        sim = PHomMatcher("similarity", False).run(g1, g2, mat, 0.5)
        assert sim.quality == sim.extra["qual_sim"]
