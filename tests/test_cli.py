"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.graph.digraph import DiGraph
from repro.graph.io import dump_json, load_json


@pytest.fixture
def graph_files(tmp_path):
    pattern = DiGraph.from_edges([("a", "b")], labels={"a": "A", "b": "B"}, name="pat")
    data = DiGraph.from_edges(
        [("x", "m"), ("m", "y")], labels={"x": "A", "m": "M", "y": "B"}, name="dat"
    )
    ppath = tmp_path / "pattern.json"
    dpath = tmp_path / "data.json"
    dump_json(pattern, ppath)
    dump_json(data, dpath)
    return str(ppath), str(dpath)


class TestMatchCommand:
    def test_match_exit_zero_and_payload(self, graph_files, capsys):
        ppath, dpath = graph_files
        code = main(["match", ppath, dpath, "--xi", "0.9", "--verify"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matched"] is True
        assert payload["quality"] == 1.0
        assert payload["mapping"] == {"a": "x", "b": "y"}
        assert payload["violations"] == []

    def test_non_match_exit_one(self, graph_files, capsys, tmp_path):
        ppath, dpath = graph_files
        simfile = tmp_path / "sim.json"
        simfile.write_text(json.dumps([["a", "x", 0.4]]))
        code = main(["match", ppath, dpath, "--similarity", str(simfile), "--xi", "0.9"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["matched"] is False

    def test_injective_and_metric_flags(self, graph_files, capsys):
        ppath, dpath = graph_files
        code = main(
            ["match", ppath, dpath, "--injective", "--metric", "similarity",
             "--threshold", "0.5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "similarity"


class TestBatchCommand:
    @pytest.fixture
    def batch_files(self, tmp_path):
        data = DiGraph.from_edges(
            [("x", "m"), ("m", "y"), ("y", "z")],
            labels={"x": "A", "m": "M", "y": "B", "z": "C"},
            name="dat",
        )
        dpath = tmp_path / "data.json"
        dump_json(data, dpath)
        specs = [
            ("hit", [("a", "b")], {"a": "A", "b": "B"}),
            ("deep", [("a", "c")], {"a": "A", "c": "C"}),
            ("miss", [("a", "b")], {"a": "NOPE", "b": "ALSO_NOPE"}),
        ]
        ppaths = []
        for name, edges, labels in specs:
            pattern = DiGraph.from_edges(edges, labels=labels, name=name)
            path = tmp_path / f"{name}.json"
            dump_json(pattern, path)
            ppaths.append(str(path))
        return str(dpath), ppaths

    def test_batch_jsonl_and_summary(self, batch_files, capsys):
        dpath, ppaths = batch_files
        assert main(["batch", dpath, *ppaths, "--xi", "0.9"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 4  # one per pattern + summary
        per_pattern, summary = lines[:-1], lines[-1]
        assert [line["name"] for line in per_pattern] == ["hit", "deep", "miss"]
        assert per_pattern[0]["matched"] is True
        assert per_pattern[1]["matched"] is True  # a->c rides the x ~> z path
        assert per_pattern[2]["matched"] is False
        assert summary["summary"] is True
        assert summary["patterns"] == 3
        assert summary["matched"] == 2
        # The data graph is prepared exactly once for the whole batch.
        assert summary["service"]["prepares"] == 1
        assert summary["service"]["calls"] == 3

    def test_batch_parallel_and_outfile(self, batch_files, tmp_path):
        dpath, ppaths = batch_files
        out = tmp_path / "report.jsonl"
        code = main(
            ["batch", dpath, *ppaths, "--xi", "0.9", "--parallel", "2",
             "--out", str(out)]
        )
        assert code == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert [line["name"] for line in lines[:-1]] == ["hit", "deep", "miss"]
        assert lines[-1]["service"]["prepares"] == 1


class TestBackendFlag:
    def test_match_records_backend(self, graph_files, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        ppath, dpath = graph_files
        assert main(["match", ppath, dpath, "--xi", "0.9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "python"

    def test_match_backend_results_identical(self, graph_files, capsys):
        pytest.importorskip("numpy")
        ppath, dpath = graph_files
        payloads = {}
        for backend in ("python", "numpy"):
            assert main(["match", ppath, dpath, "--xi", "0.9", "--backend", backend]) == 0
            payloads[backend] = json.loads(capsys.readouterr().out)
        assert payloads["python"]["backend"] == "python"
        assert payloads["numpy"]["backend"] == "numpy"
        assert payloads["python"]["mapping"] == payloads["numpy"]["mapping"]
        assert payloads["python"]["quality"] == payloads["numpy"]["quality"]

    def test_batch_summary_audits_backend(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        data = DiGraph.from_edges(
            [("x", "m"), ("m", "y")], labels={"x": "A", "m": "M", "y": "B"}, name="d"
        )
        pattern = DiGraph.from_edges([("a", "b")], labels={"a": "A", "b": "B"}, name="p")
        dpath, ppath = tmp_path / "d.json", tmp_path / "p.json"
        dump_json(data, dpath)
        dump_json(pattern, ppath)
        code = main(
            ["batch", str(dpath), str(ppath), "--xi", "0.9", "--backend", "numpy"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert summary["backend"] == "numpy"
        assert summary["service"]["backend"] == "numpy"
        assert summary["service"]["solved_by"] == {"numpy": 1}

    def test_env_var_default(self, graph_files, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        ppath, dpath = graph_files
        assert main(["match", ppath, dpath, "--xi", "0.9"]) == 0
        assert json.loads(capsys.readouterr().out)["backend"] == "python"

    def test_index_warm_reports_backend(self, graph_files, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        _, dpath = graph_files
        store_dir = tmp_path / "idx"
        assert main(["index", "warm", str(store_dir), dpath]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["action"] == "stored"
        assert line["backend"] == "python"
        # Warming again under a different backend hydrates the same file.
        pytest.importorskip("numpy")
        assert main(
            ["index", "warm", str(store_dir), dpath, "--backend", "numpy"]
        ) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["action"] == "exists"
        assert line["backend"] == "numpy"


class TestOtherCommands:
    def test_stats(self, graph_files, capsys):
        ppath, _ = graph_files
        assert main(["stats", ppath]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 2
        assert payload["edges"] == 1

    def test_closure(self, graph_files, tmp_path, capsys):
        _, dpath = graph_files
        out = tmp_path / "closure.json"
        assert main(["closure", dpath, str(out)]) == 0
        closure = load_json(out)
        assert closure.has_edge("x", "y")  # two-hop path became an edge
