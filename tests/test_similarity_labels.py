"""Tests for label-equality and grouped-label similarity."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.similarity.labels import (
    LabelGroupSimilarity,
    label_equality_matrix,
    label_group_matrix,
)
from repro.utils.errors import InputError


class TestLabelEquality:
    def test_equal_labels_score_one(self):
        g1 = DiGraph.from_edges([("v1", "v2")], labels={"v1": "A", "v2": "B"})
        g2 = DiGraph.from_edges([("u1", "u2")], labels={"u1": "A", "u2": "C"})
        mat = label_equality_matrix(g1, g2)
        assert mat("v1", "u1") == 1.0
        assert mat("v1", "u2") == 0.0
        assert mat("v2", "u1") == 0.0

    def test_multiple_same_label_targets(self):
        g1 = DiGraph.from_edges([], nodes=["v"], labels={"v": "X"})
        g2 = DiGraph.from_edges([], nodes=["a", "b"], labels={"a": "X", "b": "X"})
        mat = label_equality_matrix(g1, g2)
        assert mat.candidates("v", 0.5) == {"a", "b"}


class TestLabelGroups:
    def test_diagonal_is_one(self):
        sim = LabelGroupSimilarity(10, 3, random.Random(0))
        assert sim.score(4, 4) == 1.0

    def test_cross_group_is_zero(self):
        sim = LabelGroupSimilarity(10, 5, random.Random(0))
        # labels l and l+1 always land in different groups (l % 5).
        assert sim.score(0, 1) == 0.0

    def test_within_group_symmetric_and_memoised(self):
        sim = LabelGroupSimilarity(10, 5, random.Random(0))
        # 0 and 5 share group 0.
        first = sim.score(0, 5)
        assert 0.0 <= first <= 1.0
        assert sim.score(5, 0) == first
        assert sim.score(0, 5) == first

    def test_out_of_universe_rejected(self):
        sim = LabelGroupSimilarity(10, 5, random.Random(0))
        with pytest.raises(InputError):
            sim.score(0, 10)

    def test_invalid_parameters(self):
        with pytest.raises(InputError):
            LabelGroupSimilarity(0, 1, random.Random(0))
        with pytest.raises(InputError):
            LabelGroupSimilarity(5, 6, random.Random(0))

    def test_matrix_for_graphs(self):
        rng = random.Random(1)
        g1 = DiGraph.from_edges([], nodes=["v"], labels={"v": 0})
        g2 = DiGraph.from_edges(
            [], nodes=["a", "b", "c"], labels={"a": 0, "b": 5, "c": 1}
        )
        mat = label_group_matrix(g1, g2, num_labels=10, num_groups=5, rng=rng)
        assert mat("v", "a") == 1.0  # same label
        assert mat("v", "c") == 0.0  # different group
        within = mat("v", "b")  # same group (0 and 5 mod 5)
        assert 0.0 <= within <= 1.0
