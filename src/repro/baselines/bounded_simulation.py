"""Bounded simulation: the successor notion this paper seeded.

The paper's edge-to-path revision of graph matching was followed in the
graph-simulation line of work by *bounded simulation* (Fan et al., "Graph
Pattern Matching: From Intractable to Polynomial Time", VLDB 2010), where
a pattern edge ``(v, v')`` is satisfied by a data path of length ≤ k — the
same relaxation applied to simulation instead of homomorphism.  It is
included here as the natural extension/future-work feature: it sits
between plain simulation (k = 1) and "simulation with unbounded paths",
and unlike (1-1) p-hom it is decidable in polynomial time.

The implementation reuses the hop-bounded reachability masks of
:mod:`repro.core.bounded` and the standard worklist refinement: ``u``
simulates ``v`` when they are similar and, for every pattern edge
``(v, v')``, some node within k hops of ``u`` simulates ``v'``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.core.bounded import bounded_reachability_masks
from repro.core.phom import validate_threshold
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError
from repro.utils.timing import Stopwatch

__all__ = ["BoundedSimulationResult", "bounded_simulation", "bounded_simulates"]

Node = Hashable


@dataclass
class BoundedSimulationResult:
    """The maximal k-bounded simulation relation plus summary facts."""

    relation: dict[Node, set[Node]]
    max_hops: int
    total: bool
    coverage: float
    elapsed_seconds: float


def bounded_simulation(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    max_hops: int,
) -> BoundedSimulationResult:
    """Compute the maximal simulation where edges match paths of length ≤ k.

    ``max_hops = 1`` coincides with classical graph simulation; growing k
    monotonically enlarges the relation (a property the tests assert).
    """
    validate_threshold(xi)
    if max_hops < 1:
        raise InputError("max_hops must be at least 1")
    with Stopwatch() as watch:
        order2 = list(graph2.nodes())
        position2 = {node: i for i, node in enumerate(order2)}
        within = bounded_reachability_masks(graph2, max_hops, order2)

        relation: dict[Node, set[Node]] = {
            v: mat.candidates(v, xi) for v in graph1.nodes()
        }
        # A node with pattern successors needs at least one outgoing hop.
        for v in graph1.nodes():
            if graph1.successors(v):
                relation[v] = {
                    u for u in relation[v] if within[position2[u]] != 0
                }

        sim_mask: dict[Node, int] = {
            v: sum(1 << position2[u] for u in members)
            for v, members in relation.items()
        }

        queue: deque[Node] = deque(graph1.nodes())
        queued = set(graph1.nodes())
        while queue:
            child = queue.popleft()
            queued.discard(child)
            child_mask = sim_mask[child]
            for v in graph1.predecessors(child):
                survivors = {
                    u
                    for u in relation[v]
                    # u survives iff someone within k hops simulates `child`.
                    if within[position2[u]] & child_mask
                }
                if len(survivors) != len(relation[v]):
                    relation[v] = survivors
                    sim_mask[v] = sum(1 << position2[u] for u in survivors)
                    if v not in queued:
                        queue.append(v)
                        queued.add(v)
    nonempty = sum(1 for members in relation.values() if members)
    n1 = graph1.num_nodes()
    return BoundedSimulationResult(
        relation=relation,
        max_hops=max_hops,
        total=(nonempty == n1),
        coverage=(nonempty / n1) if n1 else 1.0,
        elapsed_seconds=watch.elapsed,
    )


def bounded_simulates(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    max_hops: int,
) -> bool:
    """True when every pattern node keeps a k-bounded simulator."""
    return bounded_simulation(graph1, graph2, mat, xi, max_hops).total
