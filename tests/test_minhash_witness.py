"""Tests for MinHash sketches and mapping witnesses."""

import random

import pytest

from repro.core.witness import format_witnesses, mapping_witnesses
from repro.graph.digraph import DiGraph
from repro.similarity.minhash import MinHasher, minhash_similarity_matrix
from repro.similarity.shingles import resemblance, shingle_set
from repro.utils.errors import InputError


class TestMinHasher:
    def test_identical_documents_estimate_one(self):
        hasher = MinHasher(64)
        tokens = [f"t{i}" for i in range(50)]
        assert hasher.estimate(hasher.sketch(tokens), hasher.sketch(tokens)) == 1.0

    def test_disjoint_documents_estimate_near_zero(self):
        hasher = MinHasher(64)
        a = hasher.sketch([f"a{i}" for i in range(50)])
        b = hasher.sketch([f"b{i}" for i in range(50)])
        assert hasher.estimate(a, b) < 0.1

    def test_estimates_track_true_resemblance(self):
        rng = random.Random(0)
        hasher = MinHasher(256)
        base = [f"t{i}" for i in range(200)]
        for replace in (20, 80, 140):
            other = list(base)
            for i in rng.sample(range(200), replace):
                other[i] = f"x{i}"
            truth = resemblance(shingle_set(base), shingle_set(other))
            estimate = hasher.estimate(hasher.sketch(base), hasher.sketch(other))
            assert abs(estimate - truth) < 0.15, (replace, truth, estimate)

    def test_sketch_deterministic_across_instances(self):
        tokens = list("abcdefgh")
        assert MinHasher(32, seed=5).sketch(tokens) == MinHasher(32, seed=5).sketch(tokens)
        assert MinHasher(32, seed=5).sketch(tokens) != MinHasher(32, seed=6).sketch(tokens)

    def test_empty_document_conventions(self):
        hasher = MinHasher(16)
        empty = hasher.sketch([])
        assert hasher.estimate(empty, empty) == 1.0
        full = hasher.sketch(list("abcdefgh"))
        assert hasher.estimate(empty, full) == 0.0

    def test_validation(self):
        with pytest.raises(InputError):
            MinHasher(0)
        hasher = MinHasher(8)
        with pytest.raises(InputError):
            hasher.estimate((1, 2), (1, 2))


class TestMinhashMatrix:
    def _graph(self, contents):
        graph = DiGraph()
        for node, tokens in contents.items():
            graph.add_node(node, content=tokens)
        return graph

    def test_matrix_close_to_exact_shingles(self):
        from repro.similarity.shingles import shingle_similarity_matrix

        tokens = [f"w{i}" for i in range(120)]
        edited = tokens[:100] + [f"y{i}" for i in range(20)]
        g1 = self._graph({"p": tokens})
        g2 = self._graph({"q": edited, "r": [f"z{i}" for i in range(100)]})
        exact = shingle_similarity_matrix(g1, g2)
        approx = minhash_similarity_matrix(g1, g2, num_hashes=256)
        assert abs(exact("p", "q") - approx("p", "q")) < 0.12
        assert approx("p", "r") < 0.1

    def test_lsh_skips_disjoint_pairs(self):
        g1 = self._graph({"p": [f"a{i}" for i in range(40)]})
        g2 = self._graph({"q": [f"b{i}" for i in range(40)]})
        mat = minhash_similarity_matrix(g1, g2, num_hashes=32)
        assert mat("p", "q") == 0.0


class TestWitnesses:
    def test_fig1_witnesses(self, fig1_pattern, fig1_data, fig1_expected_mapping):
        witnesses = mapping_witnesses(fig1_pattern, fig1_data, fig1_expected_mapping)
        assert all(w.satisfied for w in witnesses)
        by_edge = {w.edge: w for w in witnesses}
        assert by_edge[("books", "textbooks")].path == ("books", "categories", "school")
        assert by_edge[("A", "books")].hops == 1
        rendered = format_witnesses(witnesses)
        assert "books/categories/school" in rendered

    def test_unmatched_endpoints_skipped(self, fig1_pattern, fig1_data):
        witnesses = mapping_witnesses(fig1_pattern, fig1_data, {"A": "B"})
        assert witnesses == []  # no edge has both endpoints matched

    def test_violated_edge_reported(self):
        g1 = DiGraph.from_edges([("a", "b")])
        g2 = DiGraph.from_edges([("y", "x")])
        witnesses = mapping_witnesses(g1, g2, {"a": "x", "b": "y"})
        assert len(witnesses) == 1
        assert not witnesses[0].satisfied
        assert "UNSATISFIED" in format_witnesses(witnesses)

    def test_hops_separate_edge_from_path_matches(self):
        g1 = DiGraph.from_edges([("a", "b"), ("a", "c")])
        g2 = DiGraph.from_edges([("x", "y"), ("y", "z"), ("x", "w")])
        mapping = {"a": "x", "b": "w", "c": "z"}
        by_edge = {w.edge: w for w in mapping_witnesses(g1, g2, mapping)}
        assert by_edge[("a", "b")].hops == 1
        assert by_edge[("a", "c")].hops == 2
