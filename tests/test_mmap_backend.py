"""The mmap backend and the v2 store format that carries it.

Covers the zero-copy contract end to end: v2 records keep mask rows
8-byte aligned (asserted on real file bytes) while v1 records still
load; ``payload_region``'s verification modes (full, header+sidecar)
degrade corruption to a miss, never a crash; mapped matrix views are
read-only; mappings are shared per file identity; ``evolve_rows``
copy-on-write leaves the on-disk file byte-identical; and a
``backend="mmap"`` service hydrates from the store without a single
payload decode, answering bit-identically to the other backends.
"""

from __future__ import annotations

import hashlib
import json
import os
import random

import pytest

from repro.core.api import match_prepared
from repro.core.backends import available_backends, get_backend
from repro.core.backends.mmap_block import _CowMatrix, _MappedIntRows
from repro.core.incremental import DeltaLog
from repro.core.prepared import PAYLOAD_LAYOUT, PreparedDataGraph, prepare_data_graph
from repro.core.service import MatchingService
from repro.core.store import (
    SIDECAR_SUFFIX,
    STORE_VERSION,
    PreparedIndexStore,
)
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.generators import random_digraph
from repro.similarity.matrix import SimilarityMatrix

needs_numpy = pytest.mark.skipif(
    "mmap" not in available_backends(), reason="mmap backend unavailable"
)

pytestmark = needs_numpy


def build_graph(seed: int = 17, nodes: int = 90, edges: int = 270) -> DiGraph:
    return random_digraph(nodes, edges, random.Random(seed), name="mapped")


def workload(seed: int = 17, nodes: int = 90, pattern_nodes: int = 12):
    rng = random.Random(seed + 1)
    graph = build_graph(seed, nodes, 3 * nodes)
    pattern = graph.subgraph(
        rng.sample(list(graph.nodes()), pattern_nodes), name="pat"
    )
    mat = SimilarityMatrix()
    candidates = rng.sample(list(graph.nodes()), min(nodes, 40))
    for v in pattern.nodes():
        for u in candidates:
            mat.set(v, u, 1.0)
    return graph, pattern, mat


def warm_store(tmp_path, graph):
    store = PreparedIndexStore(tmp_path)
    prepared = prepare_data_graph(graph)
    store.save(prepared)
    return store, prepared


def open_mapped(store, graph, prepared, verify: str = "full"):
    backend = get_backend("mmap")
    region = store.payload_region(prepared.fingerprint, verify=verify)
    assert region is not None
    payload = backend.open_payload(region)
    return PreparedDataGraph.from_mapped(
        graph, payload, fingerprint=prepared.fingerprint
    ), payload, region


# ----------------------------------------------------------------------
# v2 format: alignment asserted on the real file bytes; v1 read-compat
# ----------------------------------------------------------------------
class TestStoreFormat:
    def test_v2_record_is_8_byte_aligned(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        region = store.payload_region(prepared.fingerprint, verify="full")
        assert region is not None
        assert region.version == STORE_VERSION
        # The payload itself starts on an 8-byte boundary...
        assert region.payload_offset % 8 == 0
        blob = store.path_for(prepared.fingerprint).read_bytes()
        payload = blob[region.payload_offset :]
        header = json.loads(payload[: payload.index(b"\n")])
        assert header["layout"] == PAYLOAD_LAYOUT
        n, width = header["num_nodes"], header["row_bytes"]
        assert width % 8 == 0
        # ...and so does the mask section, in absolute file coordinates.
        mask_offset = payload.index(b"\n") + 1
        mask_offset += -mask_offset % 8
        assert (region.payload_offset + mask_offset) % 8 == 0
        # masks, then (when the header declares them) the four 8-byte
        # prefilter sketch columns of the v3 section
        sketch_bytes = 4 * 8 * n if header.get("sketch") else 0
        assert len(payload) - mask_offset == (2 * n + 1) * width + sketch_bytes

    def test_v1_records_still_load(self, tmp_path):
        """A hand-crafted version-1 file (52-byte envelope, packed rows)
        loads exactly as before — and is honestly unmappable."""
        graph = build_graph()
        prepared = prepare_data_graph(graph)
        n = prepared.num_nodes()
        width = (n + 7) // 8  # layout-1 packed width, no alignment
        header = {
            "fingerprint": prepared.fingerprint,
            "num_nodes": n,
            "num_edges": prepared.num_edges(),
            "row_bytes": width,
            "node_reprs": [repr(node) for node in prepared.nodes2],
            "prepare_seconds": prepared.prepare_seconds,
        }
        parts = [json.dumps(header, separators=(",", ":")).encode() + b"\n"]
        parts.extend(m.to_bytes(width, "little") for m in prepared.from_mask)
        parts.extend(m.to_bytes(width, "little") for m in prepared.to_mask)
        parts.append(prepared.cycle_mask.to_bytes(width, "little"))
        payload = b"".join(parts)
        blob = b"".join(
            (
                b"RPHOMIDX",
                (1).to_bytes(4, "little"),
                len(payload).to_bytes(8, "little"),
                hashlib.sha256(payload).digest(),
                payload,
            )
        )
        store = PreparedIndexStore(tmp_path)
        store.path_for(prepared.fingerprint).write_bytes(blob)

        loaded = store.load(prepared.fingerprint, graph)
        assert loaded is not None
        assert loaded.from_mask == prepared.from_mask
        assert loaded.to_mask == prepared.to_mask
        assert loaded.cycle_mask == prepared.cycle_mask
        [entry] = store.entries()
        assert entry.version == 1
        # v1 payloads are not 8-byte aligned: never offered for mapping.
        assert store.payload_region(prepared.fingerprint) is None
        # A service asked to map it falls back to the decode tier.
        service = MatchingService(store_dir=str(tmp_path), backend="mmap")
        service.prepared_for(graph)
        snap = service.stats.snapshot()
        assert snap["mmap_opens"] == 0
        assert snap["disk_hits"] == 1 and snap["prepares"] == 0

    def test_entries_report_section_sizes(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        [entry] = store.entries()
        n = prepared.num_nodes()
        width = 8 * max(1, (n + 63) // 64)
        assert entry.mask_section_bytes == (2 * n + 1) * width
        assert entry.payload_bytes == len(prepared.to_payload())
        assert entry.mask_section_bytes < entry.payload_bytes < entry.file_bytes
        doc = entry.as_dict()
        assert doc["payload_bytes"] == entry.payload_bytes
        assert doc["mask_section_bytes"] == entry.mask_section_bytes


# ----------------------------------------------------------------------
# Verification modes and the sidecar lifecycle
# ----------------------------------------------------------------------
class TestVerifyModes:
    def test_header_mode_skips_hash_after_full_verify(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        path = store.path_for(prepared.fingerprint)
        sidecar = path.with_name(path.name + SIDECAR_SUFFIX)
        assert not sidecar.exists()  # save() never writes sidecars
        # First header-mode region upgrades to a full hash and records it.
        region1 = store.payload_region(prepared.fingerprint, verify="header")
        assert region1 is not None
        assert sidecar.exists()
        doc = json.loads(sidecar.read_text())
        assert doc["size"] == region1.file_size
        assert doc["mtime_ns"] == region1.mtime_ns
        # Now header mode trusts the stat identity — prove it by making
        # the sidecar lie: corrupt payload bytes, restore the stat.
        stat = path.stat()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        import os

        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.payload_region(prepared.fingerprint, verify="header") is not None
        # Full mode re-hashes and refuses.
        assert store.payload_region(prepared.fingerprint, verify="full") is None
        assert store.load(prepared.fingerprint, graph, verify="full") is None

    def test_corruption_degrades_to_miss_never_crash(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        path = store.path_for(prepared.fingerprint)
        blob = path.read_bytes()
        for damage in (
            blob[:20],  # truncated inside the envelope
            blob[:-10],  # truncated payload
            b"WRONGMAG" + blob[8:],  # bad magic
            blob[:8] + (99).to_bytes(4, "little") + blob[12:],  # unknown version
            blob[:8] + blob[8:12] + b"\x01\x00\x00\x00" + blob[16:],  # reserved
            blob[:70] + bytes([blob[70] ^ 0xFF]) + blob[71:],  # payload flip
        ):
            path.write_bytes(damage)
            sidecar = path.with_name(path.name + SIDECAR_SUFFIX)
            sidecar.unlink(missing_ok=True)
            assert store.payload_region(prepared.fingerprint, verify="full") is None
            assert store.load(prepared.fingerprint, graph) is None
        # A service over the corrupt file rebuilds rather than crashing.
        path.write_bytes(blob[:-10])
        service = MatchingService(store_dir=str(tmp_path), backend="mmap")
        rebuilt = service.prepared_for(graph)
        assert list(rebuilt.from_mask) == list(prepared.from_mask)
        snap = service.stats.snapshot()
        assert snap["prepares"] == 1 and snap["mmap_opens"] == 0

    def test_remove_cleans_sidecar(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        assert store.payload_region(prepared.fingerprint, verify="full") is not None
        path = store.path_for(prepared.fingerprint)
        sidecar = path.with_name(path.name + SIDECAR_SUFFIX)
        assert sidecar.exists()
        assert store.remove(prepared.fingerprint)
        assert not path.exists() and not sidecar.exists()

    def test_load_rejects_bad_verify_mode(self, tmp_path):
        from repro.utils.errors import InputError

        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        with pytest.raises(InputError, match="verify"):
            store.load(prepared.fingerprint, graph, verify="paranoid")


# ----------------------------------------------------------------------
# Mapped hydration: zero-copy views, read-only, shared mappings
# ----------------------------------------------------------------------
class TestMappedHydration:
    def test_mapped_equals_decoded(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        mapped, payload, region = open_mapped(store, graph, prepared)
        assert list(mapped.from_mask) == list(prepared.from_mask)
        assert list(mapped.to_mask) == list(prepared.to_mask)
        assert mapped.cycle_mask == prepared.cycle_mask
        assert mapped.fingerprint == prepared.fingerprint
        assert mapped.num_edges() == prepared.num_edges()
        # The lazy adapters compare element-wise, slices included.
        assert mapped.from_mask == prepared.from_mask
        assert mapped.from_mask[3:7] == prepared.from_mask[3:7]
        assert payload.mask_section_bytes <= region.payload_length

    def test_mapped_views_are_read_only(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        mapped, payload, _ = open_mapped(store, graph, prepared)
        rows = mapped.backend_rows(get_backend("mmap"))
        assert rows is payload.rows  # pre-seeded, never rebuilt
        with pytest.raises(ValueError):
            rows.from_rows[0, 0] = 1
        with pytest.raises(ValueError):
            rows.to_rows[0, 0] = 1

    def test_mappings_shared_per_file_identity(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        _, payload_a, _ = open_mapped(store, graph, prepared)
        _, payload_b, _ = open_mapped(store, graph, prepared, verify="header")
        assert payload_a.rows.mapping is payload_b.rows.mapping
        # A rewrite moves the stat identity: new region, new mapping.
        store.save(prepared)
        _, payload_c, _ = open_mapped(store, graph, prepared)
        assert payload_c.rows.mapping is not payload_a.rows.mapping

    def test_mapped_open_refuses_wrong_fingerprint(self, tmp_path):
        graph = build_graph()
        store, prepared = warm_store(tmp_path, graph)
        backend = get_backend("mmap")
        region = store.payload_region(prepared.fingerprint, verify="full")
        with pytest.raises(ValueError):
            PreparedDataGraph.from_mapped(
                graph, backend.open_payload(region),
                fingerprint=graph_fingerprint(build_graph(seed=99)),
            )
        # Count mismatches are the cheap honest check with no hint given.
        smaller = build_graph(seed=99, nodes=50, edges=150)
        with pytest.raises(ValueError):
            PreparedDataGraph.from_mapped(smaller, backend.open_payload(region))


# ----------------------------------------------------------------------
# Copy-on-write evolution over mapped rows
# ----------------------------------------------------------------------
class TestCopyOnWriteEvolve:
    def test_evolve_keeps_file_byte_identical(self, tmp_path):
        graph = build_graph(seed=5, nodes=70)
        store, prepared = warm_store(tmp_path, graph)
        path = store.path_for(prepared.fingerprint)
        before = path.read_bytes()
        mapped, payload, _ = open_mapped(store, graph, prepared)
        base_rows = mapped.backend_rows(get_backend("mmap"))

        log = DeltaLog(graph, base_fingerprint=prepared.fingerprint)
        nodes = list(graph.nodes())
        graph.add_edge(nodes[0], nodes[1])
        graph.add_edge(nodes[2], nodes[0])
        evolved = mapped.apply_delta(log)
        cold = prepare_data_graph(graph)
        assert list(evolved.from_mask) == list(cold.from_mask)
        assert list(evolved.to_mask) == list(cold.to_mask)
        assert evolved.cycle_mask == cold.cycle_mask
        # COW product answers like a cold build, row for row...
        import numpy as np

        backend = get_backend("mmap")
        evolved_rows = evolved.backend_rows(backend)
        want = backend.build_rows(cold.from_mask, cold.to_mask, len(cold.nodes2))
        for i in range(len(cold.nodes2)):
            assert np.array_equal(evolved_rows.from_rows[i], want.from_rows[i]), i
            assert np.array_equal(evolved_rows.to_rows[i], want.to_rows[i]), i
        # ...dirty rows are private overlays, clean rows still alias the
        # map, and the store file never changed underneath either.
        if isinstance(evolved_rows.from_rows, _CowMatrix):
            assert evolved_rows.from_rows.base is base_rows.from_rows
            assert evolved_rows.from_rows.overrides
        assert path.read_bytes() == before

    def test_cow_overlay_merges_across_evolutions(self, tmp_path):
        graph = build_graph(seed=6, nodes=60)
        store, prepared = warm_store(tmp_path, graph)
        mapped, _, _ = open_mapped(store, graph, prepared)
        backend = get_backend("mmap")
        rows = mapped.backend_rows(backend)
        n = len(mapped.nodes2)
        once = backend.evolve_rows(
            rows, list(mapped.from_mask), list(mapped.to_mask), n, [0, 1]
        )
        twice = backend.evolve_rows(
            once, list(mapped.from_mask), list(mapped.to_mask), n, [2]
        )
        assert isinstance(twice.from_rows, _CowMatrix)
        assert set(twice.from_rows.overrides) == {0, 1, 2}
        assert twice.from_rows.base is rows.from_rows
        # Geometry drift opts out (same contract as the numpy backend).
        assert (
            backend.evolve_rows(
                rows, list(mapped.from_mask)[:-1], list(mapped.to_mask)[:-1],
                n - 1, [0],
            )
            is None
        )


# ----------------------------------------------------------------------
# Service + CLI integration
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_mmap_service_serves_without_decoding(self, tmp_path):
        graph, pattern, mat = workload()
        warm = MatchingService(store_dir=str(tmp_path), backend="numpy")
        reference = warm.match(pattern, graph, mat, 0.6)

        service = MatchingService(store_dir=str(tmp_path), backend="mmap")
        report = service.match(pattern, graph, mat, 0.6)
        snap = service.stats.snapshot()
        assert snap["mmap_opens"] == 1
        assert snap["mapped_bytes"] > 0
        assert snap["disk_hits"] == 1 and snap["prepares"] == 0
        assert report.matched == reference.matched
        assert report.quality == reference.quality
        assert report.result.mapping == reference.result.mapping
        # Memory hit on the second call: no second open.
        service.match(pattern, graph, mat, 0.6)
        assert service.stats.snapshot()["mmap_opens"] == 1

    def test_all_backends_identical_via_facade(self, tmp_path):
        graph, pattern, mat = workload(seed=23)
        prepared = prepare_data_graph(graph)
        store = PreparedIndexStore(tmp_path)
        store.save(prepared)
        mapped, _, _ = open_mapped(store, graph, prepared)
        reports = {
            name: match_prepared(
                pattern, mapped if name == "mmap" else prepared, mat, 0.6,
                backend=name,
            )
            for name in available_backends()
        }
        reference = reports["python"]
        for name, report in reports.items():
            assert report.result.mapping == reference.result.mapping, name
            assert report.quality == reference.quality, name

    def test_two_services_share_one_mapping(self, tmp_path):
        graph, pattern, mat = workload(seed=29)
        MatchingService(store_dir=str(tmp_path), backend="numpy").match(
            pattern, graph, mat, 0.6
        )
        a = MatchingService(store_dir=str(tmp_path), backend="mmap")
        b = MatchingService(store_dir=str(tmp_path), backend="mmap")
        pa = a.prepared_for(graph)
        pb = b.prepared_for(graph.copy())
        assert pa.mapped is not None and pb.mapped is not None
        assert pa.mapped.rows.mapping is pb.mapped.rows.mapping

    def test_cli_warm_reports_mapped_hydration(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.graph.io import dump_json

        graph, _, _ = workload(seed=31)
        gpath = tmp_path / "g.json"
        dump_json(graph, str(gpath))
        store_dir = tmp_path / "idx"
        assert main(
            ["index", "warm", str(store_dir), str(gpath), "--backend", "mmap"]
        ) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["action"] == "stored"
        assert line["backend"] == "mmap"
        assert line["hydration"] == "mapped"
        # Decoding backends report the decode path.
        assert main(
            ["index", "warm", str(store_dir), str(gpath), "--backend", "numpy"]
        ) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["action"] == "exists"
        assert line["hydration"] == "decoded"

    def test_lazy_int_adapter_contract(self, tmp_path):
        graph = build_graph(seed=37, nodes=70)
        store, prepared = warm_store(tmp_path, graph)
        mapped, _, _ = open_mapped(store, graph, prepared)
        masks = mapped.from_mask
        assert isinstance(masks, _MappedIntRows)
        assert len(masks) == prepared.num_nodes()
        assert masks[-1] == prepared.from_mask[-1]
        assert list(iter(masks)) == list(prepared.from_mask)
        assert (masks == prepared.from_mask) is True
        assert (masks == prepared.from_mask[:-1]) is False
        with pytest.raises(TypeError):
            hash(masks)


# ----------------------------------------------------------------------
# Mapping interning identity: checksum in the key, not just stat identity
# ----------------------------------------------------------------------
class TestMappingInterningIdentity:
    def test_same_size_same_mtime_rewrite_gets_a_fresh_mapping(self, tmp_path):
        """A rewrite that preserves size *and* mtime must not serve the
        stale interned mapping.

        ``payload_region`` trusts (size, mtime) plus the envelope
        checksum; the interned-mapping key used to trust only the stat
        identity, so a same-length in-place rewrite landing within the
        filesystem's mtime granularity (or restored via utime, as
        backup/sync tools do) kept handing out the *old* bytes to new
        opens while any pinned mapping was alive.  The checksum now in
        the key makes the rewritten content a distinct identity.
        """
        graph = build_graph(seed=23, nodes=60, edges=180)
        store, prepared = warm_store(tmp_path, graph)
        path = store.path_for(prepared.fingerprint)
        _, pinned, region_a = open_mapped(store, graph, prepared, verify="full")
        assert pinned is not None  # keeps the weak-interned mapping alive

        stat_before = path.stat()
        blob = bytearray(path.read_bytes())
        offset = region_a.payload_offset
        blob[-1] ^= 0xFF  # flip one payload byte (tail of the mask/sketch section)
        # Re-seal the envelope: checksum bytes sit at [24:56] for v2/v3.
        blob[24:56] = hashlib.sha256(bytes(blob[offset:])).digest()
        # Rewrite the way writers do: tmp + rename (a new inode), then
        # an mtime landing on the old stamp (coarse-granularity
        # filesystems; sync/backup tools restoring times).  The pinned
        # mapping still holds the *old* inode's bytes.
        tmp = path.with_name(path.name + ".rewrite")
        tmp.write_bytes(bytes(blob))
        os.replace(tmp, path)
        os.utime(path, ns=(stat_before.st_atime_ns, stat_before.st_mtime_ns))
        after = path.stat()
        assert (after.st_size, after.st_mtime_ns) == (
            stat_before.st_size, stat_before.st_mtime_ns,
        )

        region_b = store.payload_region(prepared.fingerprint, verify="full")
        assert region_b is not None
        assert region_b.payload_sha256 != region_a.payload_sha256
        fresh = get_backend("mmap").open_payload(region_b)
        assert fresh.rows.mapping is not pinned.rows.mapping
        assert fresh.rows.mapping.buffer[-1] != pinned.rows.mapping.buffer[-1]

    def test_unchanged_file_still_shares_one_mapping(self, tmp_path):
        """The checksum key must not break sharing for unchanged files."""
        graph = build_graph(seed=29, nodes=60, edges=180)
        store, prepared = warm_store(tmp_path, graph)
        _, payload_a, _ = open_mapped(store, graph, prepared, verify="full")
        _, payload_b, _ = open_mapped(store, graph, prepared, verify="header")
        assert payload_a.rows.mapping is payload_b.rows.mapping

    def test_compact_then_reopen_serves_fresh_replayed_bytes(self, tmp_path):
        """Chain → compact → reopen: the mapped view equals a cold build.

        The flow the warm store runs under streaming load: an index
        served as a delta chain off its base is compacted into a fresh
        full payload; a reopen right after (with the old base mapping
        still pinned) must map the compacted file, not any stale
        identity, and its masks must equal a from-scratch prepare.
        """
        graph = build_graph(seed=31, nodes=60, edges=180)
        store, prepared = warm_store(tmp_path, graph)
        nodes = sorted(graph.nodes())
        evolved_graph = graph.copy(name="evolved")
        added = 0
        for a, b in zip(nodes, nodes[5:]):
            if not evolved_graph.has_edge(a, b):
                evolved_graph.add_edge(a, b)
                added += 1
            if added == 3:
                break
        evolved, info = store.evolve(graph, evolved_graph, chain=True)
        assert evolved is not None
        fp = graph_fingerprint(evolved_graph)

        chained = store.payload_region(fp, verify="full")
        assert chained is not None and chained.overlay is not None
        pinned = get_backend("mmap").open_payload(chained)  # pin the base mapping

        assert store.compact(fp, evolved_graph)["action"] == "compacted"
        region = store.payload_region(fp, verify="full")
        assert region is not None and region.overlay is None
        payload = get_backend("mmap").open_payload(region)
        assert payload.rows.mapping is not pinned.rows.mapping
        mapped = PreparedDataGraph.from_mapped(
            evolved_graph, payload, fingerprint=fp
        )
        cold = prepare_data_graph(evolved_graph)
        assert list(mapped.from_mask) == list(cold.from_mask)
        assert list(mapped.to_mask) == list(cold.to_mask)
        assert mapped.cycle_mask == cold.cycle_mask
