"""Tests for graph (de)serialization and networkx interop."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.io import (
    dump_json,
    from_json_dict,
    from_networkx,
    load_json,
    to_edge_list_text,
    to_json_dict,
    to_networkx,
)
from repro.utils.errors import InputError


@pytest.fixture
def sample() -> DiGraph:
    graph = DiGraph(name="sample")
    graph.add_node("a", label="LA", weight=2.0, content=["t1", "t2"])
    graph.add_node("b")
    graph.add_edge("a", "b")
    graph.add_node("isolated")
    return graph


class TestJson:
    def test_round_trip_dict(self, sample):
        restored = from_json_dict(to_json_dict(sample))
        assert restored == sample
        assert restored.attrs("a")["content"] == ["t1", "t2"]
        assert restored.name == "sample"

    def test_round_trip_file(self, sample, tmp_path):
        path = tmp_path / "graph.json"
        dump_json(sample, path)
        assert load_json(path) == sample

    def test_unserialisable_node_rejected(self):
        graph = DiGraph()
        graph.add_node(("tuple", "id"))
        with pytest.raises(InputError):
            to_json_dict(graph)

    def test_bad_format_rejected(self):
        with pytest.raises(InputError):
            from_json_dict({"format": "something-else", "nodes": [], "edges": []})


class TestText:
    def test_edge_list_text(self, sample):
        text = to_edge_list_text(sample)
        assert "a -> b" in text
        assert "isolated" in text

    def test_empty_graph_text(self):
        assert to_edge_list_text(DiGraph()) == ""


class TestNetworkx:
    def test_round_trip(self, sample):
        restored = from_networkx(to_networkx(sample))
        assert set(restored.nodes()) == set(sample.nodes())
        assert set(restored.edges()) == set(sample.edges())
        assert restored.label("a") == "LA"
        assert restored.weight("a") == 2.0
