"""Load schedules: phased target-rate profiles parsed from JSON.

A schedule is a list of phases executed back to back, dbworkload-style::

    {"phases": [
        {"kind": "ramp",   "seconds": 5,  "rate": [5, 40]},
        {"kind": "steady",  "seconds": 10, "rate": 40},
        {"kind": "pause",  "seconds": 2}
    ]}

``rate_at(t)`` gives the target arrival rate (requests/second across the
whole fleet) at offset ``t`` from the run start: a ``ramp`` interpolates
linearly between its two endpoint rates, a ``steady`` phase holds one
rate, and a ``pause`` is a zero-rate gap (drivers idle through it — the
classic think-time window that lets tail latencies decay between
bursts).  Offsets at or past the schedule's end rate 0; drivers stop.

Schedules are plain frozen dataclasses: picklable (they ride to worker
processes verbatim) and hashable-by-value, with all validation up front
so a malformed schedule file fails before any process is spawned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.utils.errors import InputError

__all__ = ["Phase", "Schedule"]

_KINDS = ("ramp", "steady", "pause")


@dataclass(frozen=True)
class Phase:
    """One schedule segment: ``kind`` over ``seconds`` at a target rate.

    ``rate_start``/``rate_end`` are equal for ``steady``, both zero for
    ``pause``, and the ramp endpoints for ``ramp``.
    """

    kind: str
    seconds: float
    rate_start: float = 0.0
    rate_end: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InputError(
                f"unknown phase kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not self.seconds > 0:
            raise InputError(f"phase seconds must be positive, got {self.seconds!r}")
        if self.rate_start < 0 or self.rate_end < 0:
            raise InputError("phase rates must be non-negative")
        if self.kind == "pause" and (self.rate_start or self.rate_end):
            raise InputError("a pause phase cannot carry a rate")

    def rate_at(self, offset: float) -> float:
        """The target rate ``offset`` seconds into this phase."""
        if self.kind == "pause":
            return 0.0
        if self.kind == "steady":
            return self.rate_start
        fraction = min(1.0, max(0.0, offset / self.seconds))
        return self.rate_start + (self.rate_end - self.rate_start) * fraction

    @classmethod
    def from_payload(cls, payload: dict) -> "Phase":
        if not isinstance(payload, dict):
            raise InputError(f"each phase must be an object, got {type(payload).__name__}")
        kind = payload.get("kind")
        seconds = payload.get("seconds")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise InputError(f"phase seconds must be a number, got {seconds!r}")
        rate = payload.get("rate", 0)
        if kind == "ramp":
            if (
                not isinstance(rate, (list, tuple))
                or len(rate) != 2
                or not all(isinstance(r, (int, float)) for r in rate)
            ):
                raise InputError(
                    f"a ramp phase needs \"rate\": [start, end], got {rate!r}"
                )
            start, end = float(rate[0]), float(rate[1])
        elif kind == "steady":
            if not isinstance(rate, (int, float)) or isinstance(rate, bool):
                raise InputError(f"a steady phase needs a numeric rate, got {rate!r}")
            start = end = float(rate)
        else:
            start = end = 0.0
        return cls(kind=str(kind), seconds=float(seconds), rate_start=start, rate_end=end)


@dataclass(frozen=True)
class Schedule:
    """An immutable sequence of phases with offset arithmetic."""

    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise InputError("a schedule needs at least one phase")
        if all(phase.kind == "pause" for phase in self.phases):
            raise InputError("a schedule of only pauses would issue no load")

    @property
    def total_seconds(self) -> float:
        return sum(phase.seconds for phase in self.phases)

    @property
    def peak_rate(self) -> float:
        """The highest instantaneous target rate anywhere in the run."""
        return max(max(p.rate_start, p.rate_end) for p in self.phases)

    def phase_at(self, t: float) -> tuple[Phase, float] | None:
        """The phase covering offset ``t`` and the offset within it."""
        if t < 0:
            raise InputError(f"schedule offset must be non-negative, got {t!r}")
        start = 0.0
        for phase in self.phases:
            if t < start + phase.seconds:
                return phase, t - start
            start += phase.seconds
        return None

    def rate_at(self, t: float) -> float:
        """Target fleet-wide rate at offset ``t`` (0 past the end)."""
        located = self.phase_at(t)
        if located is None:
            return 0.0
        phase, offset = located
        return phase.rate_at(offset)

    def next_active(self, t: float) -> float | None:
        """The earliest offset ≥ ``t`` with a non-zero target rate.

        How drivers skip pauses without busy-waiting: during a pause
        they sleep straight to the next phase boundary.  ``None`` when
        the rest of the schedule is silent.
        """
        start = 0.0
        for phase in self.phases:
            end = start + phase.seconds
            if end > t and phase.kind != "pause":
                candidate = max(t, start)
                # A ramp from zero is "active" from its start: the rate
                # becomes non-zero immediately after.
                if phase.rate_at(candidate - start) > 0 or phase.kind == "ramp":
                    return candidate
            start = end
        return None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_payload(cls, payload: dict) -> "Schedule":
        if not isinstance(payload, dict) or "phases" not in payload:
            raise InputError('a schedule file is an object with a "phases" list')
        phases = payload["phases"]
        if not isinstance(phases, list):
            raise InputError(f'"phases" must be a list, got {type(phases).__name__}')
        return cls(phases=tuple(Phase.from_payload(p) for p in phases))

    @classmethod
    def from_file(cls, path: "str | Path") -> "Schedule":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise InputError(f"cannot read schedule file {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InputError(f"schedule file {path} is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def steady(cls, rate: float, seconds: float) -> "Schedule":
        """A single steady phase — the CLI's ``--rate/--duration`` shorthand."""
        return cls(phases=(Phase("steady", float(seconds), float(rate), float(rate)),))

    def to_payload(self) -> dict:
        phases = []
        for phase in self.phases:
            entry: dict = {"kind": phase.kind, "seconds": phase.seconds}
            if phase.kind == "ramp":
                entry["rate"] = [phase.rate_start, phase.rate_end]
            elif phase.kind == "steady":
                entry["rate"] = phase.rate_start
            phases.append(entry)
        return {"phases": phases}
