"""Persistent-store amortization: warm disk load vs cold ``G2⁺`` build.

The headline measurement of the persistent prepared-index store: on a
2000-node data graph, restoring the index from a pre-warmed store
directory (what every process after the first pays) must be at least 5×
faster than building the transitive-closure index from scratch (what a
cold process pays), with bit-identical masks and identical match
reports.  ``test_store_speedup`` asserts the ratio recorded in
CHANGES.md; the two ``benchmark`` cases expose both sides to
pytest-benchmark's timing output.
"""

from __future__ import annotations

import random
import time

from repro.core.api import match_prepared
from repro.core.prepared import PreparedDataGraph, prepare_data_graph
from repro.core.store import PreparedIndexStore
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint
from repro.similarity.labels import label_equality_matrix

DATA_NODES = 2000
OUT_DEGREE = 8
PATTERN_NODES = 10
XI = 0.75
MIN_SPEEDUP = 5.0


def _workload():
    """A 2000-node mostly-acyclic data graph, like a web-site skeleton.

    A uniform random digraph at serving-realistic densities collapses
    into one giant SCC, whose condensation makes preparation artificially
    cheap (every node shares one closure row).  Site skeletons — the
    paper's Section-6 workload — are largely hierarchical, so the bench
    uses forward-oriented random edges: every node carries a distinct
    reachability row and the cold build pays the real closure cost.
    """
    rng = random.Random(2026)
    data = DiGraph(name="skeleton")
    for i in range(DATA_NODES):
        data.add_node(i)
    for i in range(DATA_NODES):
        for _ in range(OUT_DEGREE):
            j = rng.randrange(i + 1, DATA_NODES + 1)
            if j < DATA_NODES:
                data.add_edge(i, j)
    pattern = data.subgraph(rng.sample(list(data.nodes()), PATTERN_NODES), name="p")
    return data, pattern


def test_cold_prepare(benchmark):
    data, _ = _workload()
    prepared = benchmark.pedantic(
        prepare_data_graph, args=(data,), rounds=1, iterations=1
    )
    assert prepared.num_nodes() == DATA_NODES


def test_warm_disk_load(benchmark, tmp_path):
    data, _ = _workload()
    store = PreparedIndexStore(tmp_path)
    store.save(prepare_data_graph(data))
    fingerprint = graph_fingerprint(data)
    loaded = benchmark.pedantic(
        store.load, args=(fingerprint, data), rounds=3, iterations=1
    )
    assert loaded is not None


def test_store_speedup(tmp_path):
    """Disk restore ≥ 5× faster than a cold build, bit-identical outputs."""
    data, pattern = _workload()

    start = time.perf_counter()
    cold = prepare_data_graph(data)
    cold_seconds = time.perf_counter() - start

    store = PreparedIndexStore(tmp_path)
    store.save(cold)
    fingerprint = graph_fingerprint(data)

    # Best of three: a single load is small enough for timer noise.
    warm_seconds = float("inf")
    loaded: PreparedDataGraph | None = None
    for _ in range(3):
        start = time.perf_counter()
        loaded = store.load(fingerprint, data)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    assert loaded is not None

    # Bit identity of every mask the algorithms read.
    assert loaded.from_mask == cold.from_mask
    assert loaded.to_mask == cold.to_mask
    assert loaded.cycle_mask == cold.cycle_mask

    # Identical match reports through either index.
    mat = label_equality_matrix(pattern, data)
    via_cold = match_prepared(pattern, cold, mat, XI)
    via_loaded = match_prepared(pattern, loaded, mat, XI)
    assert via_cold.matched == via_loaded.matched
    assert via_cold.quality == via_loaded.quality
    assert via_cold.result.mapping == via_loaded.result.mapping

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"\ncold prepare={cold_seconds:.3f}s disk load={warm_seconds:.3f}s "
        f"speedup={speedup:.1f}x on |V2|={DATA_NODES}"
    )
    assert speedup >= MIN_SPEEDUP
