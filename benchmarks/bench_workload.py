"""The load harness as a benchmark: tail latency under phased load.

Runs the repro-workload harness in-process (deterministic inline
drivers, no multiprocessing jitter) over a ramp-then-steady schedule on
the flat and sharded front-ends, with a mutate mix exercising the
delta-evolution path, and records the merged latency distribution the
service-layer ``latency_hook`` observed.  Under ``--json PATH`` it
writes ``BENCH_workload.json`` with p50/p95/p99 per front-end plus the
throughput and the evolution counters — the numbers the CI workload
smoke gates on (the repo's first tail-latency gate, as opposed to the
throughput/speedup gates of the other benches).

The assertions are *sanity* floors (requests flowed, no errors, p99
finite and ordered); the hard p99 budget lives in CI where the runner
hardware is known.
"""

from __future__ import annotations

from repro.workload import Schedule, ScenarioSpec, WorkloadConfig, run_workload

#: One modest phased profile shared by both front-end runs: a short
#: ramp into a steady plateau.  Inline drivers issue strictly by this
#: clock, so the bench runs in ~2×(ramp+steady) wall seconds.
RAMP_SECONDS = 1.0
STEADY_SECONDS = 2.0
STEADY_RATE = 120.0
MUTATE_MIX = 0.15
WORKERS = 2
SHARDS = 2


def _schedule() -> Schedule:
    return Schedule.from_payload(
        {
            "phases": [
                {"kind": "ramp", "seconds": RAMP_SECONDS, "rate": [20, STEADY_RATE]},
                {"kind": "steady", "seconds": STEADY_SECONDS, "rate": STEADY_RATE},
            ]
        }
    )


def _run(frontend: str, tmp_path) -> dict:
    config = WorkloadConfig(
        schedule=_schedule(),
        workers=WORKERS,
        frontend=frontend,
        shards=SHARDS,
        store_dir=str(tmp_path / f"{frontend}-store"),
        seed=11,
        mutate_mix=MUTATE_MIX,
        stats_interval=0.5,
        processes=False,
        scenario_spec=ScenarioSpec(sites=3, site_size=24, patterns_per_site=2),
    )
    return run_workload(config)


def _latency_fields(report: dict) -> dict:
    return {
        "requests": report["requests"],
        "errors": report["errors"],
        "mutations": report["mutations"],
        "throughput_rps": report["throughput_rps"],
        "p50": report["p50"],
        "p95": report["p95"],
        "p99": report["p99"],
    }


def test_workload_tail_latency(tmp_path, bench_json):
    flat = _run("flat", tmp_path)
    sharded = _run("sharded", tmp_path)

    for report in (flat, sharded):
        assert report["requests"] > 0
        assert report["errors"] == 0
        assert report["p50"] <= report["p95"] <= report["p99"]
        # The hook observed every request: the tail is measured on the
        # full population, not a sample.
        assert report["stats"]["hook_calls"] == report["requests"]
        # The mutate mix really drove incremental evolution.
        assert report["mutations"] > 0
        assert report["stats"]["delta_hits"] > 0
        # Warm store: the initial corpus came from disk, not a cold build.
        assert report["stats"]["disk_hits"] >= 1
    # Flat never cold-prepares at all; sharded may legitimately re-prepare
    # the few components whose shard plan a mutation reshaped.
    assert flat["stats"]["prepares"] == 0
    assert sharded["stats"]["shard_evolves"] > 0

    bench_json(
        "workload",
        {
            "schedule": {
                "ramp_seconds": RAMP_SECONDS,
                "steady_seconds": STEADY_SECONDS,
                "steady_rate": STEADY_RATE,
            },
            "workers": WORKERS,
            "shards": SHARDS,
            "mutate_mix": MUTATE_MIX,
            "flat": _latency_fields(flat),
            "sharded": _latency_fields(sharded),
            "flat_delta_hits": flat["stats"]["delta_hits"],
            "sharded_shard_evolves": sharded["stats"]["shard_evolves"],
        },
    )
