"""Complexity artefacts: the paper's reductions as runnable code.

3SAT and X3C instances with brute-force solvers, the Theorem 4.1
NP-hardness reductions (3SAT → p-hom on DAGs; X3C → 1-1 p-hom with a tree
pattern), and the approximation-factor-preserving reductions between WIS
and the optimization problems (Theorems 4.3 and 5.1).
"""

from repro.complexity.sat import ThreeSatInstance, brute_force_sat, random_3sat
from repro.complexity.x3c import X3CInstance, brute_force_x3c, random_x3c
from repro.complexity.reductions import (
    PHomInstance,
    assignment_to_mapping,
    cover_to_mapping,
    mapping_to_assignment,
    mapping_to_cover,
    reduce_3sat_to_phom,
    reduce_x3c_to_injective_phom,
)
from repro.complexity.afp import (
    pairs_to_mapping,
    sph_solution_to_wis,
    wis_instance,
    wis_solution_to_sph,
    wis_to_sph,
)

__all__ = [
    "ThreeSatInstance",
    "brute_force_sat",
    "random_3sat",
    "X3CInstance",
    "brute_force_x3c",
    "random_x3c",
    "PHomInstance",
    "reduce_3sat_to_phom",
    "assignment_to_mapping",
    "mapping_to_assignment",
    "reduce_x3c_to_injective_phom",
    "cover_to_mapping",
    "mapping_to_cover",
    "wis_to_sph",
    "sph_solution_to_wis",
    "wis_solution_to_sph",
    "wis_instance",
    "pairs_to_mapping",
]
