"""The Ramsey procedure of Boppana & Halldórsson (paper Fig. 9, bottom).

``Ramsey(G)`` returns an independent set *and* a clique of ``G`` by
recursing on the neighbors / non-neighbors of a pivot node:

    Ramsey(G):
        if G = ∅: return (∅, ∅)
        choose some node v of G
        (C1, I1) := Ramsey(N(v))        # neighbors of v
        (C2, I2) := Ramsey(N̄(v))        # non-neighbors of v
        return (max(C1 ∪ {v}, C2), max(I1, I2 ∪ {v}))

Ramsey theory guarantees one of the two outputs is large
(≥ n^{1/ log n}-ish), which is what gives CliqueRemoval — and therefore the
paper's compMaxCard, which simulates it — the O(n/log²n) quality bound.

The recursion is converted to an explicit stack: its depth is bounded only
by |V|, and product graphs at experiment scale overflow Python's call
stack.  The pivot choice is deterministic (first node in a fixed order) so
results are reproducible.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.undirected import Graph

__all__ = ["ramsey"]

Node = Hashable


def ramsey(
    graph: Graph,
    within: set[Node] | None = None,
    order: dict[Node, int] | None = None,
) -> tuple[set[Node], set[Node]]:
    """Run the Ramsey procedure on ``graph`` (restricted to ``within``).

    Returns ``(clique, independent_set)``.  ``order`` fixes the pivot
    preference (smaller rank first); by default, graph insertion order.

    >>> g = Graph.from_edges([(1, 2), (2, 3)])
    >>> clique, iset = ramsey(g)
    >>> g.is_clique(clique) and g.is_independent_set(iset)
    True
    """
    if order is None:
        order = {node: i for i, node in enumerate(graph.nodes())}
    vertices = set(graph.nodes()) if within is None else set(within)

    # Explicit-stack post-order evaluation of the recursion above.  Each
    # frame processes one vertex set in three phases: pick pivot and descend
    # into neighbors (0), descend into non-neighbors (1), combine (2).
    results: list[tuple[set[Node], set[Node]]] = []
    stack: list[list] = [[vertices, 0, None]]
    while stack:
        frame = stack[-1]
        subset, phase, pivot = frame
        if phase == 0:
            if not subset:
                results.append((set(), set()))
                stack.pop()
                continue
            pivot = min(subset, key=order.__getitem__)
            frame[2] = pivot
            frame[1] = 1
            stack.append([subset & graph.neighbors(pivot), 0, None])
        elif phase == 1:
            frame[1] = 2
            non_neighbors = subset - graph.neighbors(pivot)
            non_neighbors.discard(pivot)
            stack.append([non_neighbors, 0, None])
        else:
            clique2, iset2 = results.pop()  # from non-neighbors
            clique1, iset1 = results.pop()  # from neighbors
            clique1.add(pivot)  # pivot joins the clique found among its neighbors
            iset2.add(pivot)  # pivot joins the IS found among its non-neighbors
            clique = clique1 if len(clique1) >= len(clique2) else clique2
            iset = iset1 if len(iset1) > len(iset2) else iset2
            results.append((clique, iset))
            stack.pop()
    return results.pop()
