"""The naive product-graph approximation algorithms (paper Section 5).

"Theorem 5.1 suggests naive approximation algorithms for these problems
... (1) generate a product graph by using function f in the AFP-reduction,
(2) find a (weighted) independent set by utilizing the algorithms in
[7, 16], and (3) invoke function g in the AFP-reduction to get a (1-1)
p-hom mapping from subgraphs of G1 to G2."

Finding an independent set of the complement ``Gc`` is the same as finding
a clique of the product graph, so step (2) runs ISRemoval (paper Fig. 9)
directly on the product graph — materialising the product but not its
(much denser) complement.  The weighted problems apply Halldórsson's
grouping over the product nodes.

These algorithms carry the same O(log²(n1·n2)/(n1·n2)) guarantee as the
in-place engine but pay the O(|V1|²|V2|²) product-graph cost — they are
the baseline that motivates compMaxCard, and the ablation benchmarks
measure exactly that gap.
"""

from __future__ import annotations

from repro.core.phom import PHomResult
from repro.core.product import pairs_to_mapping, product_graph
from repro.core.quality import qual_card, qual_sim
from repro.graph.digraph import DiGraph
from repro.graph.undirected import Graph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.timing import Stopwatch
from repro.wis.removal import is_removal
from repro.wis.weighted import weight_group_index

__all__ = [
    "naive_comp_max_card",
    "naive_comp_max_card_injective",
    "naive_comp_max_sim",
    "naive_comp_max_sim_injective",
]

import math


def _card_result(
    graph1: DiGraph,
    mat: SimilarityMatrix,
    product: Graph,
    injective: bool,
    elapsed: float,
) -> PHomResult:
    clique, isets = is_removal(product)
    mapping = pairs_to_mapping(clique)
    return PHomResult(
        mapping=mapping,
        qual_card=qual_card(mapping, graph1),
        qual_sim=qual_sim(mapping, graph1, mat),
        injective=injective,
        stats={
            "product_nodes": product.num_nodes(),
            "product_edges": product.num_edges(),
            "iset_rounds": len(isets),
            "elapsed_seconds": elapsed,
        },
    )


def naive_comp_max_card(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
) -> PHomResult:
    """Naive CPH: explicit product graph + ISRemoval."""
    with Stopwatch() as watch:
        product = product_graph(graph1, graph2, mat, xi, injective=False, weighting="cardinality")
    return _card_result(graph1, mat, product, False, watch.elapsed)


def naive_comp_max_card_injective(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
) -> PHomResult:
    """Naive CPH^{1-1}: product graph without shared-image edges + ISRemoval."""
    with Stopwatch() as watch:
        product = product_graph(graph1, graph2, mat, xi, injective=True, weighting="cardinality")
    return _card_result(graph1, mat, product, True, watch.elapsed)


def _sim_result(
    graph1: DiGraph,
    mat: SimilarityMatrix,
    product: Graph,
    injective: bool,
    elapsed: float,
) -> PHomResult:
    """Halldórsson grouping over product nodes, ISRemoval per group."""
    nodes = list(product.nodes())
    best_mapping: dict = {}
    best_sim = -1.0
    groups_used = 0
    if nodes:
        top = max(product.weight(node) for node in nodes)
        n = len(nodes)
        cutoff = top / n
        num_groups = max(1, math.ceil(math.log2(n))) if n > 1 else 1
        groups: list[list] = [[] for _ in range(num_groups)]
        for node in nodes:
            weight = product.weight(node)
            if weight < cutoff:
                continue
            groups[weight_group_index(weight, top, num_groups) - 1].append(node)
        for group in groups:
            if not group:
                continue
            groups_used += 1
            clique, _ = is_removal(product.subgraph(group))
            mapping = pairs_to_mapping(clique)
            sim = qual_sim(mapping, graph1, mat)
            if sim > best_sim:
                best_sim = sim
                best_mapping = mapping
    return PHomResult(
        mapping=best_mapping,
        qual_card=qual_card(best_mapping, graph1),
        qual_sim=qual_sim(best_mapping, graph1, mat),
        injective=injective,
        stats={
            "product_nodes": product.num_nodes(),
            "product_edges": product.num_edges(),
            "groups": groups_used,
            "elapsed_seconds": elapsed,
        },
    )


def naive_comp_max_sim(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
) -> PHomResult:
    """Naive SPH: weighted product graph + grouped ISRemoval."""
    with Stopwatch() as watch:
        product = product_graph(graph1, graph2, mat, xi, injective=False, weighting="similarity")
    return _sim_result(graph1, mat, product, False, watch.elapsed)


def naive_comp_max_sim_injective(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
) -> PHomResult:
    """Naive SPH^{1-1}."""
    with Stopwatch() as watch:
        product = product_graph(graph1, graph2, mat, xi, injective=True, weighting="similarity")
    return _sim_result(graph1, mat, product, True, watch.elapsed)
