"""EXP-F6 — regenerate Figure 6: scalability on synthetic data.

The same three sweeps as Figure 5 but reporting mean matcher seconds, and
with graphSimulation added to the line-up (its accuracy is 0% everywhere —
the paper omits it from Figure 5 for that reason — but its running time is
part of Figure 6).

Run: ``python -m repro.experiments.fig6 --axis size|noise|threshold``
"""

from __future__ import annotations

import argparse

from repro.baselines.matchers import SimulationMatcher, default_matchers
from repro.experiments.config import get_scale
from repro.experiments.fig5 import AXES, SweepPoint, render, sweep
from repro.experiments.report import save_csv

__all__ = ["sweep_times", "main"]


def sweep_times(axis: str, scale, shared_cache: bool = True) -> list[SweepPoint]:
    """Figure 6 sweep: the four p-hom algorithms plus graphSimulation.

    Figure 6 reports *seconds*, so the cache choice matters here most:
    the default shares each copy's ``G2⁺`` index across matchers
    (warm-index times); ``shared_cache=False`` (CLI: ``--cold``) restores
    the paper's cold-per-trial timing.
    """
    matchers = default_matchers() + [SimulationMatcher()]
    return sweep(axis, scale, matchers=matchers, shared_cache=shared_cache)


def main(argv: list[str] | None = None) -> list[SweepPoint]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--axis", choices=AXES, default="size")
    parser.add_argument("--scale", default=None, help="smoke | default | paper")
    parser.add_argument("--csv", default=None)
    parser.add_argument(
        "--cold",
        action="store_true",
        help="paper-faithful timing: rebuild each data graph's G2+ index per trial",
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    points = sweep_times(args.axis, scale, shared_cache=not args.cold)
    print(render(args.axis, points, scale, value="time"))
    if args.csv:
        matchers = list(points[0].cells) if points else []
        save_csv(
            args.csv,
            [{"size": "m", "noise": "noise%", "threshold": "xi"}[args.axis]] + matchers,
            [
                [point.x] + [point.cells[m].avg_seconds for m in matchers]
                for point in points
            ],
        )
    return points


if __name__ == "__main__":
    main()
