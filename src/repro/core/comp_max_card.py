"""Algorithms compMaxCard and compMaxCard^{1-1} (paper Section 5, Fig. 3).

Approximation algorithms for the maximum cardinality problems CPH and
CPH^{1-1}: find a (1-1) p-hom mapping from a subgraph of ``G1`` to ``G2``
maximising ``qualCard``.  The returned mapping's quality is within
``O(log²(n1·n2)/(n1·n2))`` of the optimum (Proposition 5.2), because the
greedy engine simulates ISRemoval on the product graph of ``G1 × G2⁺``.
"""

from __future__ import annotations

from repro.core.engine import comp_max_card_engine
from repro.core.phom import PHomResult
from repro.core.prepared import PreparedDataGraph
from repro.core.workspace import MatchingWorkspace
from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.timing import Stopwatch

__all__ = ["comp_max_card", "comp_max_card_injective"]


def _run(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    injective: bool,
    pick: str = "similarity",
    prepared: PreparedDataGraph | None = None,
    backend=None,
) -> PHomResult:
    with Stopwatch() as watch:
        workspace = MatchingWorkspace(
            graph1, graph2, mat, xi, prepared=prepared, backend=backend
        )
        pairs, stats = comp_max_card_engine(
            workspace, workspace.initial_good(), injective=injective, pick=pick
        )
    stats["candidate_pairs"] = workspace.num_candidate_pairs()
    stats["elapsed_seconds"] = watch.elapsed
    return PHomResult(
        mapping=workspace.mapping_to_nodes(pairs),
        qual_card=workspace.qual_card_of(pairs),
        qual_sim=workspace.qual_sim_of(pairs),
        injective=injective,
        stats=stats,
    )


def comp_max_card(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    pick: str = "similarity",
    prepared: PreparedDataGraph | None = None,
    backend=None,
) -> PHomResult:
    """Approximate CPH: a p-hom mapping maximising ``qualCard``.

    ``pick`` selects greedyMatch's candidate rule: ``"similarity"``
    (default — best ``mat()`` first) or ``"arbitrary"`` (the paper's
    unconstrained pick; see ``repro.core.engine.PICK_RULES``).
    ``prepared`` reuses a pre-built data-graph index (see
    :mod:`repro.core.prepared`), skipping the ``G2⁺`` construction of
    lines 5–7.  ``backend`` selects the solver mask representation (see
    :mod:`repro.core.backends`); results are backend-independent.

    >>> from repro.graph import DiGraph
    >>> from repro.similarity import label_equality_matrix
    >>> g1 = DiGraph.from_edges([("a", "b")])
    >>> g2 = DiGraph.from_edges([("a", "x"), ("x", "b")])
    >>> result = comp_max_card(g1, g2, label_equality_matrix(g1, g2), xi=0.5)
    >>> result.qual_card
    1.0
    """
    return _run(
        graph1, graph2, mat, xi, injective=False, pick=pick, prepared=prepared,
        backend=backend,
    )


def comp_max_card_injective(
    graph1: DiGraph,
    graph2: DiGraph,
    mat: SimilarityMatrix,
    xi: float,
    pick: str = "similarity",
    prepared: PreparedDataGraph | None = None,
    backend=None,
) -> PHomResult:
    """Approximate CPH^{1-1}: a 1-1 p-hom mapping maximising ``qualCard``."""
    return _run(
        graph1, graph2, mat, xi, injective=True, pick=pick, prepared=prepared,
        backend=backend,
    )
