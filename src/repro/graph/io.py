"""Graph (de)serialization and networkx interop.

JSON is the canonical on-disk format (stable, diff-able, no dependencies);
edge-list text is provided for quick inspection.  The networkx converters
exist so tests can cross-check our SCC/closure/matching substrate against an
independent implementation — the library itself never imports networkx.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.graph.digraph import DiGraph
from repro.utils.errors import InputError

__all__ = [
    "to_json_dict",
    "from_json_dict",
    "dump_json",
    "load_json",
    "to_edge_list_text",
    "to_networkx",
    "from_networkx",
]

_FORMAT = "repro.digraph/v1"


def to_json_dict(graph: DiGraph) -> dict[str, Any]:
    """Encode a graph as a JSON-serialisable dict.

    Node ids must themselves be JSON-serialisable (str/int/float/bool);
    other ids raise :class:`InputError` up front rather than failing deep
    inside ``json.dump``.
    """
    for node in graph.nodes():
        if not isinstance(node, (str, int, float, bool)):
            raise InputError(
                f"node id {node!r} is not JSON-serialisable; relabel before dumping"
            )
    return {
        "format": _FORMAT,
        "name": graph.name,
        "nodes": [
            {
                "id": node,
                "label": graph.label(node),
                "weight": graph.weight(node),
                "attrs": graph.attrs(node),
            }
            for node in graph.nodes()
        ],
        "edges": [[tail, head] for tail, head in graph.edges()],
    }


def from_json_dict(payload: dict[str, Any]) -> DiGraph:
    """Decode a dict produced by :func:`to_json_dict`."""
    if payload.get("format") != _FORMAT:
        raise InputError(f"unrecognised graph format: {payload.get('format')!r}")
    graph = DiGraph(name=payload.get("name", ""))
    for entry in payload["nodes"]:
        graph.add_node(
            entry["id"],
            label=entry.get("label"),
            weight=entry.get("weight", 1.0),
            **entry.get("attrs", {}),
        )
    for tail, head in payload["edges"]:
        graph.add_edge(tail, head)
    return graph


def dump_json(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_json_dict(graph), handle, indent=1, sort_keys=False)


def load_json(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`dump_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_json_dict(json.load(handle))


def to_edge_list_text(graph: DiGraph) -> str:
    """Render the graph as '<tail> -> <head>' lines (isolated nodes as '<node>')."""
    lines = []
    isolated = [
        node
        for node in graph.nodes()
        if not graph.successors(node) and not graph.predecessors(node)
    ]
    for node in isolated:
        lines.append(f"{node}")
    for tail, head in graph.edges():
        lines.append(f"{tail} -> {head}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_networkx(graph: DiGraph):
    """Convert to ``networkx.DiGraph`` (labels/weights as node attributes)."""
    import networkx as nx

    nxg = nx.DiGraph(name=graph.name)
    for node in graph.nodes():
        nxg.add_node(node, label=graph.label(node), weight=graph.weight(node))
    nxg.add_edges_from(graph.edges())
    return nxg


def from_networkx(nxg) -> DiGraph:
    """Convert from ``networkx.DiGraph`` (reads label/weight attributes)."""
    graph = DiGraph(name=str(nxg.graph.get("name", "")))
    for node, data in nxg.nodes(data=True):
        graph.add_node(node, label=data.get("label"), weight=data.get("weight", 1.0))
    for tail, head in nxg.edges():
        graph.add_edge(tail, head)
    return graph
