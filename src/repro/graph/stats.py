"""Degree statistics used by Table 2 of the paper and skeleton extraction.

Table 2 reports, per Web graph: number of nodes, number of edges,
``avgDeg(G)`` and ``maxDeg(G)``.  The skeleton rule of Section 6 keeps nodes
with ``deg(v) ≥ avgDeg(G) + α · maxDeg(G)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """The per-graph summary row of Table 2."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int

    def as_row(self) -> tuple[int, int, float, int]:
        """Row tuple in Table 2 column order."""
        return (self.num_nodes, self.num_edges, self.avg_degree, self.max_degree)


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute the Table 2 summary statistics of ``graph``."""
    return GraphStats(
        num_nodes=graph.num_nodes(),
        num_edges=graph.num_edges(),
        avg_degree=graph.average_degree(),
        max_degree=graph.max_degree(),
    )


def degree_histogram(graph: DiGraph) -> dict[int, int]:
    """Map total degree -> number of nodes with that degree."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        deg = graph.degree(node)
        histogram[deg] = histogram.get(deg, 0) + 1
    return histogram
