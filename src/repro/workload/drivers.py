"""Client drivers: the per-process request loops of the load harness.

One driver process owns one front-end (flat :class:`MatchingService`,
:class:`ShardedMatchingService`, or :class:`AsyncMatchingService`) over
the shared warm store, a worker-local rebuild of the scenario, and a
:class:`Recorder` installed as the front-end's ``latency_hook`` — the
hook is the single source of latency truth, so the histograms measure
exactly what the service layer's stopwatches measured, not the driver's
own loop overhead.

The request loop is an **open-loop Poisson generator** (algotel2016's
simpy scenario idiom, flattened to real time): inter-arrival gaps are
``Expovariate(rate_at(t) / workers)``, pauses are slept through to the
next active phase, and an optional :class:`TokenBucket` clips the fleet
to ``--max-rate``.  A ``--mutate-mix`` fraction of arrivals mutate the
corpus and call ``update_graph`` instead of matching — which is what
drives ``delta_hits``/``shard_evolves`` during a run.

Results travel back to the parent as plain payload dicts on a queue:
histogram payloads (merged exactly by the runner), request/error
counts, the final stats snapshot, and the publisher's periodic samples.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

from repro.core.aio import AsyncMatchingService
from repro.core.service import MatchingService
from repro.core.sharding import ShardedMatchingService
from repro.utils.errors import InputError
from repro.workload.histogram import LatencyHistogram
from repro.workload.pacing import TokenBucket
from repro.workload.scenario import Scenario

__all__ = [
    "Recorder",
    "StatsPublisher",
    "build_frontend",
    "stats_of",
    "run_driver",
    "worker_main",
]

FRONTENDS = ("flat", "sharded", "async")

#: The hook op that carries a front-end's client-perceived request
#: latency — the op whose histogram feeds the p99 gate.
PRIMARY_OPS = {"flat": "match", "sharded": "match_sharded", "async": "async"}


class Recorder:
    """Thread-safe ``latency_hook`` target: one histogram per op."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.histograms: dict[str, LatencyHistogram] = {}

    def __call__(self, op: str, seconds: float) -> None:
        with self._lock:
            histogram = self.histograms.get(op)
            if histogram is None:
                histogram = self.histograms[op] = LatencyHistogram()
            histogram.record(seconds)

    def payloads(self) -> dict[str, dict]:
        """Queue-transportable snapshot of every op histogram."""
        with self._lock:
            return {op: h.to_payload() for op, h in self.histograms.items()}


class StatsPublisher(threading.Thread):
    """Samples a stats-snapshot callable every ``interval`` seconds.

    The periodic publisher of the harness: each sample is a consistent
    cut of the service counters (snapshots are lock-held) stamped with
    the run offset, so a report can show counter *trajectories* —
    e.g. ``delta_hits`` climbing through a mutation-heavy phase — not
    just the final totals.
    """

    def __init__(self, snapshot, interval: float, clock=time.monotonic) -> None:
        super().__init__(name="workload-stats", daemon=True)
        if not interval > 0:
            raise InputError(f"stats interval must be positive, got {interval!r}")
        self._snapshot = snapshot
        self._interval = interval
        self._clock = clock
        self._start = clock()
        # Not named _stop: threading.Thread owns that attribute.
        self._halt = threading.Event()
        self.samples: list[dict] = []

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            self.samples.append(
                {"t": self._clock() - self._start, **self._snapshot()}
            )

    def stop(self) -> list[dict]:
        """Stop sampling, take one final sample, return all samples."""
        self._halt.set()
        if self.is_alive():
            self.join()
        self.samples.append({"t": self._clock() - self._start, **self._snapshot()})
        return self.samples


def build_frontend(config, recorder: Recorder):
    """A front-end of ``config.frontend`` kind with ``recorder`` hooked in.

    The async front-end hooks the recorder at *both* layers: the inner
    service observes solve-path ops (``match``/``update``) and the async
    adapter observes the client-perceived ``async`` latency (queueing +
    executor), so one run shows both distributions.
    """
    if config.frontend == "flat":
        return MatchingService(
            store_dir=config.store_dir,
            backend=config.backend,
            latency_hook=recorder,
        )
    if config.frontend == "sharded":
        return ShardedMatchingService(
            config.shards,
            store_dir=config.store_dir,
            backend=config.backend,
            chain=True,
            latency_hook=recorder,
        )
    if config.frontend == "async":
        inner = MatchingService(
            store_dir=config.store_dir,
            backend=config.backend,
            latency_hook=recorder,
        )
        return AsyncMatchingService(
            inner, max_concurrency=config.async_concurrency, latency_hook=recorder
        )
    raise InputError(
        f"unknown frontend {config.frontend!r}; expected one of {FRONTENDS}"
    )


def stats_of(frontend) -> dict:
    """A flat numeric snapshot of a front-end's service counters.

    Flat services expose ``stats.snapshot()``; sharded ones aggregate
    their workers (router counters like ``sharded_solves``/``hook_calls``
    are folded in additively beside the worker aggregate); the async
    adapter reports its wrapped service.  Non-numeric fields
    (``backend``, ``solved_by``) are dropped — the result merges across
    processes by plain addition.
    """
    if isinstance(frontend, AsyncMatchingService):
        frontend = frontend.service
    if isinstance(frontend, ShardedMatchingService):
        snap = frontend.stats_snapshot()
        out = {
            k: v
            for k, v in snap["aggregate"].items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        for key, value in snap.items():
            if key in ("aggregate", "per_shard", "spill", "shards"):
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[key] = out.get(key, 0) + value
        return out
    snap = frontend.stats.snapshot()
    return {
        k: v
        for k, v in snap.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def _issue(frontend, scenario: Scenario, config, rng: random.Random) -> str:
    """Issue one request synchronously; returns the request kind."""
    if config.mutate_mix > 0 and rng.random() < config.mutate_mix:
        scenario.mutate(rng)
        frontend.update_graph(scenario.corpus)
        return "mutate"
    pattern = scenario.sample_pattern(rng)
    if isinstance(frontend, ShardedMatchingService):
        frontend.match_sharded(
            pattern, scenario.corpus, scenario.similarity, scenario.xi,
            prefilter=config.prefilter,
        )
    else:
        frontend.match(
            pattern, scenario.corpus, scenario.similarity, scenario.xi,
            prefilter=config.prefilter,
        )
    return "match"


def run_driver(
    config,
    scenario: Scenario,
    frontend,
    worker_id: int,
    clock=time.monotonic,
    sleep=time.sleep,
) -> dict:
    """Run one driver's request loop to the end of the schedule.

    Returns ``{"requests", "errors", "mutations"}``.  Arrival pacing:
    each worker generates a thinned Poisson stream at
    ``rate_at(t) / workers``, so the superposed fleet stream is Poisson
    at the schedule's rate.  Long gaps are slept in ≤50 ms slices so a
    ramp's rising rate is re-sampled promptly.
    """
    schedule = config.schedule
    share = max(1, config.workers)
    bucket = (
        TokenBucket(config.max_rate / share, clock=clock, sleep=sleep)
        if config.max_rate
        else None
    )
    rng = random.Random((config.seed * 1_000_003 + worker_id) * 2 + 1)
    start = clock()
    requests = errors = mutations = 0
    while True:
        t = clock() - start
        if t >= schedule.total_seconds:
            break
        rate = schedule.rate_at(t) / share
        if rate <= 0:
            resume = schedule.next_active(t)
            if resume is None:
                break
            sleep(min(resume - t, 0.05))
            continue
        gap = rng.expovariate(rate)
        deadline = min(t + gap, schedule.total_seconds)
        while True:
            t = clock() - start
            if t >= deadline:
                break
            sleep(min(deadline - t, 0.05))
        if clock() - start >= schedule.total_seconds:
            break
        if bucket is not None:
            bucket.acquire()
        try:
            kind = _issue(frontend, scenario, config, rng)
            requests += 1
            if kind == "mutate":
                mutations += 1
        except Exception:
            errors += 1
    return {"requests": requests, "errors": errors, "mutations": mutations}


async def _issue_async(frontend: AsyncMatchingService, scenario, config, rng) -> str:
    if config.mutate_mix > 0 and rng.random() < config.mutate_mix:
        scenario.mutate(rng)
        await frontend.update_graph(scenario.corpus)
        return "mutate"
    pattern = scenario.sample_pattern(rng)
    await frontend.match(
        pattern, scenario.corpus, scenario.similarity, scenario.xi,
        prefilter=config.prefilter,
    )
    return "match"


async def _drive_async(config, scenario, frontend, worker_id: int) -> dict:
    """The asyncio variant: arrivals spawn tasks, completions overlap.

    Open-loop like the sync driver, but a slow request does not delay
    the next arrival — tasks run concurrently under the adapter's
    semaphore, which is where the ``"async"`` op's queueing latency
    comes from.
    """
    schedule = config.schedule
    share = max(1, config.workers)
    rng = random.Random((config.seed * 1_000_003 + worker_id) * 2 + 1)
    bucket = TokenBucket(config.max_rate / share) if config.max_rate else None
    loop = asyncio.get_running_loop()
    start = loop.time()
    counts = {"requests": 0, "errors": 0, "mutations": 0}
    tasks: set[asyncio.Task] = set()

    def _done(task: asyncio.Task) -> None:
        tasks.discard(task)
        if task.cancelled() or task.exception() is not None:
            counts["errors"] += 1
        else:
            counts["requests"] += 1
            if task.result() == "mutate":
                counts["mutations"] += 1

    while True:
        t = loop.time() - start
        if t >= schedule.total_seconds:
            break
        rate = schedule.rate_at(t) / share
        if rate <= 0:
            resume = schedule.next_active(t)
            if resume is None:
                break
            await asyncio.sleep(min(resume - t, 0.05))
            continue
        await asyncio.sleep(min(rng.expovariate(rate), schedule.total_seconds - t))
        if loop.time() - start >= schedule.total_seconds:
            break
        if bucket is not None and not bucket.try_acquire():
            continue  # over the cap: shed this arrival
        task = asyncio.ensure_future(_issue_async(frontend, scenario, config, rng))
        tasks.add(task)
        task.add_done_callback(_done)
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    return dict(counts)


def worker_main(config, worker_id: int, queue) -> None:
    """Process entry point: rebuild, drive, report, exit.

    The scenario is rebuilt from ``(spec, seed)`` so the corpus
    fingerprint matches the parent's warm store and every worker starts
    from disk hits, not cold prepares.  The payload put on ``queue`` is
    all plain dicts — safe across fork *and* spawn start methods.
    """
    scenario = Scenario(config.scenario_spec, seed=config.seed)
    recorder = Recorder()
    frontend = build_frontend(config, recorder)
    publisher = StatsPublisher(lambda: stats_of(frontend), config.stats_interval)
    publisher.start()
    try:
        if config.frontend == "async":
            counts = asyncio.run(_drive_async(config, scenario, frontend, worker_id))
            frontend.close()
        else:
            counts = run_driver(config, scenario, frontend, worker_id)
    finally:
        samples = publisher.stop()
    queue.put(
        {
            "worker": worker_id,
            **counts,
            "histograms": recorder.payloads(),
            "stats": stats_of(frontend),
            "samples": samples,
        }
    )
