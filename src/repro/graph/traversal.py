"""Graph traversal primitives: BFS/DFS orders, reachability, paths.

These are the building blocks for the transitive-closure index
(:mod:`repro.graph.closure`) and for path-existence assertions in the
p-homomorphism validity checker: an edge ``(v, v')`` of the pattern must map
to a *nonempty* path ``σ(v) ⇝ σ(v')`` in the data graph.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

from repro.graph.digraph import DiGraph
from repro.utils.errors import GraphError

__all__ = [
    "bfs_order",
    "dfs_preorder",
    "dfs_postorder",
    "reachable_from",
    "has_nonempty_path",
    "shortest_path",
    "topological_order",
    "is_acyclic",
]

Node = Hashable


def bfs_order(graph: DiGraph, sources: Iterable[Node]) -> Iterator[Node]:
    """Yield nodes in breadth-first order from ``sources`` (sources included)."""
    queue: deque[Node] = deque()
    seen: set[Node] = set()
    for source in sources:
        if source not in graph:
            raise GraphError(f"source {source!r} not in graph")
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        yield node
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)


def dfs_preorder(graph: DiGraph, sources: Iterable[Node]) -> Iterator[Node]:
    """Yield nodes in depth-first preorder from ``sources`` (iterative)."""
    seen: set[Node] = set()
    for source in sources:
        if source not in graph:
            raise GraphError(f"source {source!r} not in graph")
        if source in seen:
            continue
        stack = [source]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            yield node
            # Reverse-sorted push keeps yields deterministic across runs.
            stack.extend(sorted(graph.successors(node), key=repr, reverse=True))


def dfs_postorder(graph: DiGraph, sources: Iterable[Node] | None = None) -> list[Node]:
    """Depth-first postorder over ``sources`` (default: all nodes), iterative."""
    roots = list(graph.nodes()) if sources is None else list(sources)
    seen: set[Node] = set()
    order: list[Node] = []
    for root in roots:
        if root not in graph:
            raise GraphError(f"source {root!r} not in graph")
        if root in seen:
            continue
        # Each stack frame is (node, iterator over its successors).
        seen.add(root)
        stack: list[tuple[Node, Iterator[Node]]] = [(root, iter(sorted(graph.successors(root), key=repr)))]
        while stack:
            node, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(sorted(graph.successors(succ), key=repr))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
    return order


def reachable_from(graph: DiGraph, source: Node) -> set[Node]:
    """All nodes reachable from ``source`` by a path of length ≥ 0."""
    return set(bfs_order(graph, [source]))


def has_nonempty_path(graph: DiGraph, source: Node, target: Node) -> bool:
    """True when a path of length ≥ 1 leads from ``source`` to ``target``.

    This is the edge relation of the transitive closure ``G⁺`` in the paper:
    ``(v1, v2) ∈ E⁺`` iff there is a *nonempty* path from v1 to v2, so a node
    reaches itself only via a cycle (including a self-loop).
    """
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    if target not in graph:
        raise GraphError(f"target {target!r} not in graph")
    frontier = graph.successors(source)
    if target in frontier:
        return True
    return target in set(bfs_order(graph, frontier)) if frontier else False


def shortest_path(graph: DiGraph, source: Node, target: Node) -> list[Node] | None:
    """A shortest nonempty path ``[source, ..., target]``, or None.

    Used to produce human-readable witnesses ("the edge (books, textbooks)
    maps to the path books/categories/school") in examples and error
    messages.  ``source == target`` requires a cycle through the node.
    """
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    if target not in graph:
        raise GraphError(f"target {target!r} not in graph")
    parent: dict[Node, Node] = {}
    queue: deque[Node] = deque()
    for succ in graph.successors(source):
        if succ not in parent:
            parent[succ] = source
            queue.append(succ)
    while queue:
        node = queue.popleft()
        if node == target:
            path = [node]
            while path[-1] != source or len(path) == 1:
                node = parent[node]
                path.append(node)
                if node == source:
                    break
            path.reverse()
            return path
        for succ in graph.successors(node):
            if succ not in parent:
                parent[succ] = node
                queue.append(succ)
    return None


def topological_order(graph: DiGraph) -> list[Node] | None:
    """A topological order of the nodes, or None when the graph has a cycle.

    Kahn's algorithm; deterministic given insertion order.
    """
    indegree = {node: graph.in_degree(node) for node in graph.nodes()}
    queue: deque[Node] = deque(node for node, deg in indegree.items() if deg == 0)
    order: list[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in graph.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != graph.num_nodes():
        return None
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """True when the graph is a DAG (no directed cycle, no self-loop)."""
    return topological_order(graph) is not None
