"""Tests for Broder shingling and the shingle similarity matrix."""

import pytest

from repro.graph.digraph import DiGraph
from repro.similarity.shingles import (
    containment,
    resemblance,
    shingle_set,
    shingle_similarity_matrix,
)
from repro.utils.errors import InputError


class TestShingleSet:
    def test_basic_windows(self):
        assert shingle_set(list("abcd"), width=2) == frozenset(
            {("a", "b"), ("b", "c"), ("c", "d")}
        )

    def test_short_document_single_shingle(self):
        assert shingle_set(["a", "b"], width=4) == frozenset({("a", "b")})

    def test_empty_document(self):
        assert shingle_set([], width=4) == frozenset()

    def test_invalid_width(self):
        with pytest.raises(InputError):
            shingle_set(["a"], width=0)

    def test_duplicate_windows_collapse(self):
        shingles = shingle_set(["a", "a", "a", "a"], width=2)
        assert shingles == frozenset({("a", "a")})


class TestMeasures:
    def test_resemblance_identical(self):
        s = shingle_set(list("abcdef"), 3)
        assert resemblance(s, s) == 1.0

    def test_resemblance_disjoint(self):
        assert resemblance(shingle_set(list("abc"), 3), shingle_set(list("xyz"), 3)) == 0.0

    def test_resemblance_empty_conventions(self):
        assert resemblance(frozenset(), frozenset()) == 1.0
        assert resemblance(frozenset(), shingle_set(list("abc"), 3)) == 0.0

    def test_resemblance_partial(self):
        a = frozenset({1, 2, 3})
        b = frozenset({2, 3, 4})
        assert resemblance(a, b) == pytest.approx(2 / 4)

    def test_containment_asymmetric(self):
        small = frozenset({1, 2})
        large = frozenset({1, 2, 3, 4})
        assert containment(small, large) == 1.0
        assert containment(large, small) == 0.5
        assert containment(frozenset(), large) == 1.0

    def test_block_edit_preserves_most_shingles(self):
        """The content-model premise: a small block edit keeps resemblance high."""
        tokens = [f"t{i}" for i in range(100)]
        edited = tokens[:40] + ["X1", "X2", "X3"] + tokens[43:]
        sim = resemblance(shingle_set(tokens), shingle_set(edited))
        assert sim > 0.8


class TestMatrix:
    def _page_graph(self, contents: dict) -> DiGraph:
        graph = DiGraph()
        for node, tokens in contents.items():
            graph.add_node(node, content=tokens)
        return graph

    def test_matrix_scores_pairs_with_shared_shingles(self):
        g1 = self._page_graph({"p": list("abcdefgh")})
        g2 = self._page_graph({"q": list("abcdefgh"), "r": list("zzzzzzzz")})
        mat = shingle_similarity_matrix(g1, g2)
        assert mat("p", "q") == 1.0
        assert mat("p", "r") == 0.0  # never computed: no shared shingle

    def test_min_score_filter(self):
        g1 = self._page_graph({"p": list("abcdefgh")})
        g2 = self._page_graph({"q": list("abcdwxyz")})
        strict = shingle_similarity_matrix(g1, g2, min_score=0.5)
        assert strict("p", "q") == 0.0
        loose = shingle_similarity_matrix(g1, g2, min_score=0.0)
        assert 0.0 < loose("p", "q") < 0.5

    def test_containment_measure(self):
        g1 = self._page_graph({"p": list("abcde")})
        g2 = self._page_graph({"q": list("abcdefghij")})
        mat = shingle_similarity_matrix(g1, g2, measure="containment")
        assert mat("p", "q") == 1.0

    def test_unknown_measure_rejected(self):
        g = self._page_graph({"p": list("abc")})
        with pytest.raises(InputError):
            shingle_similarity_matrix(g, g, measure="cosine")

    def test_missing_content_treated_as_empty(self):
        g1 = DiGraph()
        g1.add_node("no-content")
        g2 = self._page_graph({"q": list("abcd")})
        mat = shingle_similarity_matrix(g1, g2)
        assert mat("no-content", "q") == 0.0
