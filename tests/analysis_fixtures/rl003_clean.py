"""RL003 negatives: the real DiGraph mutator shapes, all paths covered.

Parsed by the analyzer tests, never imported or executed.
"""


class MiniGraph:
    def __init__(self):
        self._succ = {}
        self._fingerprint_cache = None
        self._delta_logs = []

    def _notify(self, op, a, b=None):
        for log in self._delta_logs:
            log.append((op, a, b))

    def add_node(self, node):
        self._fingerprint_cache = None
        if node not in self._succ:
            self._succ[node] = set()
            if self._delta_logs:
                self._notify("add_node", node)
            return
        self._notify("touch_node", node)

    def add_edge(self, tail, head):
        # The no-op path (edge already present) mutates nothing, so it
        # owes no notify; the mutating branch drops and notifies.
        if head not in self._succ[tail]:
            self._fingerprint_cache = None
            self._succ[tail].add(head)
            if self._delta_logs:
                self._notify("add_edge", tail, head)

    def remove_edge(self, tail, head):
        if head not in self._succ[tail]:
            raise KeyError((tail, head))  # raising exits mutate nothing
        self._fingerprint_cache = None
        self._succ[tail].discard(head)
        if self._delta_logs:
            self._notify("remove_edge", tail, head)
