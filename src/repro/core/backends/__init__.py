"""Pluggable solver backends for the greedy matching engine.

The engine (:mod:`repro.core.engine`) is generic over a
:class:`~repro.core.backends.base.SolverBackend` that owns the candidate
mask representation; this package holds the protocol, the registry, and
the three implementations:

``"python"`` — :class:`~repro.core.backends.python_int.PythonIntBackend`
    the reference: big-int bitmask rows, the seed implementation's exact
    semantics.  Always available; the default.

``"numpy"`` — :class:`~repro.core.backends.numpy_block.NumpyBlockBackend`
    masks as ``uint64`` block matrices with vectorized trimMatching
    row-ANDs and ``bitwise_count``/SWAR popcounts.  Bit-identical
    results; requires numpy.

``"mmap"`` — :class:`~repro.core.backends.mmap_block.MmapBlockBackend`
    the same uint64-block kernels, but closure matrices hydrate as
    zero-copy views over ``mmap``-ed store files
    (:meth:`~repro.core.store.PreparedIndexStore.payload_region`), so a
    warm store serves first matches without decoding payloads and
    resident memory tracks the working set.  Bit-identical results;
    requires numpy.

Selection: pass ``backend=`` (a name or a backend instance) anywhere the
matching stack accepts it — :func:`repro.core.api.match`,
:class:`~repro.core.service.MatchingService`,
:class:`~repro.core.workspace.MatchingWorkspace`, the CLI's
``--backend`` flag — or set the ``REPRO_BACKEND`` environment variable
to change the process default (explicit arguments win).
"""

from __future__ import annotations

import os

from repro.core.backends.base import MatchingList, SolverBackend
from repro.core.backends.python_int import PythonIntBackend, PythonMatchingList
from repro.core.backends.numpy_block import (
    BlockBackendBase,
    NumpyBlockBackend,
    NumpyMatchingList,
    numpy_available,
)
from repro.core.backends.mmap_block import (
    MappedPayload,
    MmapBlockBackend,
    mmap_available,
)
from repro.utils.errors import InputError

__all__ = [
    "MatchingList",
    "SolverBackend",
    "PythonIntBackend",
    "PythonMatchingList",
    "BlockBackendBase",
    "NumpyBlockBackend",
    "NumpyMatchingList",
    "MappedPayload",
    "MmapBlockBackend",
    "BACKEND_NAMES",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "numpy_available",
    "mmap_available",
]

#: Every registered backend name, in preference/registration order.
BACKEND_NAMES: tuple[str, ...] = ("python", "numpy", "mmap")

#: Environment variable supplying the process-default backend name.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_FACTORIES = {
    "python": PythonIntBackend,
    "numpy": NumpyBlockBackend,
    "mmap": MmapBlockBackend,
}

#: Constructed backends are stateless — cache one instance per name.
_instances: dict[str, SolverBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Backend names whose dependencies are importable right now."""
    return tuple(
        name
        for name in BACKEND_NAMES
        if name not in ("numpy", "mmap") or numpy_available()
    )


def get_backend(spec: "str | SolverBackend | None" = None) -> SolverBackend:
    """Resolve a backend: an instance, a registry name, or the default.

    ``None`` consults ``REPRO_BACKEND`` and falls back to ``"python"``.
    Unknown names — and known names whose dependency is missing — raise
    :class:`~repro.utils.errors.InputError` before any expensive work.
    """
    if isinstance(spec, SolverBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "python"
    if not isinstance(spec, str):
        raise InputError(
            f"solver backend must be a name or SolverBackend, got {spec!r}"
        )
    name = spec.strip().lower()
    if name not in _FACTORIES:
        raise InputError(
            f"unknown solver backend {spec!r}; choose one of {BACKEND_NAMES}"
        )
    backend = _instances.get(name)
    if backend is None:
        backend = _FACTORIES[name]()  # may raise InputError (missing dep)
        _instances[name] = backend
    return backend
