"""Graph substrate: directed/undirected graphs and the algorithms over them.

This package implements every graph-theoretic primitive the paper's
matching layer depends on: node-labeled digraphs, Tarjan SCCs and the
condensation, weakly connected components, Nuutila-style transitive closure
with a bitset reachability index, traversal utilities, generators, and
(de)serialization.
"""

from repro.graph.digraph import DiGraph
from repro.graph.undirected import Graph
from repro.graph.traversal import (
    bfs_order,
    dfs_postorder,
    dfs_preorder,
    has_nonempty_path,
    is_acyclic,
    reachable_from,
    shortest_path,
    topological_order,
)
from repro.graph.scc import Condensation, condensation, strongly_connected_components
from repro.graph.components import is_weakly_connected, weakly_connected_components
from repro.graph.closure import ReachabilityIndex, transitive_closure_graph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.stats import GraphStats, degree_histogram, graph_stats

__all__ = [
    "DiGraph",
    "Graph",
    "bfs_order",
    "dfs_preorder",
    "dfs_postorder",
    "reachable_from",
    "has_nonempty_path",
    "shortest_path",
    "topological_order",
    "is_acyclic",
    "Condensation",
    "condensation",
    "strongly_connected_components",
    "weakly_connected_components",
    "is_weakly_connected",
    "ReachabilityIndex",
    "transitive_closure_graph",
    "graph_fingerprint",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
]
