"""Integration tests: the example scripts run end to end.

The faster examples are executed outright (they assert internally and via
their printed facts); the slower archive-scale ones are covered by the
experiment tests and benchmarks instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "subgraph isomorphism: False" in out
        assert "Gp p-hom G: True" in out
        assert "books/categories/school" in out  # the paper's quoted path
        assert "matched: True" in out

    def test_complexity_reductions(self, capsys):
        module = load_example("complexity_reductions")
        module.sat_demo()
        module.x3c_demo()
        out = capsys.readouterr().out
        assert "mapping found" in out
        assert "p-hom exists: False" in out  # the contradiction instance
        assert "cover extracted from the mapping" in out

    def test_algorithm_anatomy(self, capsys):
        load_example("algorithm_anatomy").main()
        out = capsys.readouterr().out
        assert "product graph" in out
        assert "exact optimum" in out

    def test_synthetic_noise_study(self, capsys):
        load_example("synthetic_noise_study").main()
        out = capsys.readouterr().out
        assert "noise%" in out
        assert "graphSimulation" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "web_mirror_detection",
        "synthetic_noise_study",
        "complexity_reductions",
        "algorithm_anatomy",
        "vertex_similarity_pitfall",
    ],
)
def test_every_example_has_main_and_docstring(name):
    path = EXAMPLES_DIR / f"{name}.py"
    source = path.read_text()
    assert source.lstrip().startswith('"""'), f"{name} lacks a docstring"
    assert "def main()" in source
    assert '__name__ == "__main__"' in source
