"""repro-lint's own test suite: fixtures, CLI surface, baselines, waivers.

The fixture snippets under ``tests/analysis_fixtures/`` are parsed by
the analyzer, never imported: each rule has at least one true-positive
file (seeded violations) and one clean file.  Fixture runs disable the
per-rule path scopes (``restrict_paths=False``) because the snippets
live outside the production tree the scopes point at.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import all_rules, run_analysis
from repro.analysis.cli import main
from repro.analysis.engine import UsageError
from repro.analysis.rules.rl002_stats_discipline import STATS_COUNTERS
from repro.core.service import ServiceStats

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"


def run_fixture(filename: str, rule_id: str):
    report = run_analysis(
        [FIXTURES / filename],
        rules=all_rules(),
        select=[rule_id],
        restrict_paths=False,
    )
    assert not report.parse_errors, report.parse_errors
    return report.findings


# ----------------------------------------------------------------------
# Per-rule fixtures: every rule catches its seeded violations and stays
# quiet on the clean twin.
# ----------------------------------------------------------------------
class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id, violation, clean, min_findings",
        [
            ("RL001", "rl001_violation.py", "rl001_clean.py", 6),
            ("RL002", "rl002_violation.py", "rl002_clean.py", 4),
            ("RL003", "rl003_violation.py", "rl003_clean.py", 3),
            ("RL004", "rl004_rawops_violation.py", "rl004_clean.py", 4),
            ("RL005", "rl005_violation.py", "rl005_clean.py", 4),
        ],
    )
    def test_positive_and_negative(self, rule_id, violation, clean, min_findings):
        findings = run_fixture(violation, rule_id)
        assert len(findings) >= min_findings, [f.render() for f in findings]
        assert all(f.rule == rule_id for f in findings)
        assert run_fixture(clean, rule_id) == []

    def test_rl001_flags_each_blocking_kind(self):
        messages = " ".join(f.message for f in run_fixture("rl001_violation.py", "RL001"))
        for needle in ("store", "sleep", "subgraph", "open", "mapping", "future"):
            assert needle in messages, messages

    def test_rl003_names_each_defect(self):
        findings = run_fixture("rl003_violation.py", "RL003")
        symbols = {f.symbol.rsplit(".", 1)[-1] for f in findings}
        assert symbols == {"add_node", "sneaky_insert", "remove_node"}
        by_method = {f.symbol.rsplit(".", 1)[-1]: f.message for f in findings}
        assert "without clearing _fingerprint_cache" in by_method["sneaky_insert"]
        assert "without calling _notify" in by_method["add_node"]

    def test_rl004_registry_protocol_holes(self):
        findings = run_fixture("rl004_registry_violation.py", "RL004")
        messages = " ".join(f.message for f in findings)
        assert "IncompleteBackend does not implement" in messages
        assert "matching_list" in messages
        assert "hydrates_mapped" in messages
        assert run_fixture("rl004_clean.py", "RL004") == []

    def test_findings_carry_location_and_hint(self):
        finding = run_fixture("rl001_violation.py", "RL001")[0]
        assert finding.path.endswith("rl001_violation.py")
        assert finding.line > 0 and finding.col > 0
        assert finding.hint and finding.snippet
        assert finding.symbol.startswith("Cache.")


# ----------------------------------------------------------------------
# Engine mechanics: waivers, rule selection, counter cross-check
# ----------------------------------------------------------------------
class TestEngine:
    def test_inline_waiver_suppresses_only_named_rule(self, tmp_path):
        bad = tmp_path / "svc.py"
        bad.write_text(
            "class S:\n"
            "    def bump(self):\n"
            "        self.stats.calls += 1  # repro-lint: ignore[RL002] -- test\n"
            "    def bump2(self):\n"
            "        self.stats.calls += 1\n"
        )
        report = run_analysis([bad], rules=all_rules(), restrict_paths=False)
        assert report.waived == 1
        assert [f.symbol for f in report.findings] == ["S.bump2"]

    def test_waiver_on_comment_line_covers_next_line(self, tmp_path):
        bad = tmp_path / "svc.py"
        bad.write_text(
            "class S:\n"
            "    def bump(self):\n"
            "        # repro-lint: ignore[RL002]\n"
            "        self.stats.calls += 1\n"
        )
        report = run_analysis([bad], rules=all_rules(), restrict_paths=False)
        assert report.findings == [] and report.waived == 1

    def test_select_and_disable(self):
        path = FIXTURES / "rl001_violation.py"
        only = run_analysis([path], rules=all_rules(), select=["RL002"], restrict_paths=False)
        assert only.findings == []
        disabled = run_analysis(
            [path], rules=all_rules(), disable=["RL001"], restrict_paths=False
        )
        assert all(f.rule != "RL001" for f in disabled.findings)

    def test_unknown_rule_id_is_usage_error(self):
        with pytest.raises(UsageError):
            run_analysis(["src"], rules=all_rules(), select=["RL999"])

    def test_rl002_counters_match_service_stats_fields(self):
        """Adding a ServiceStats field without teaching RL002 fails here."""
        fields = {f.name for f in dataclasses.fields(ServiceStats)}
        assert fields - {"backend", "lock"} == set(STATS_COUNTERS)

    def test_default_path_scopes_skip_unrelated_files(self, tmp_path):
        # The same violating code outside the scoped files is not flagged
        # when path restriction is on (the production default).
        bad = tmp_path / "unrelated.py"
        bad.write_text("def f(used_mask):\n    used_mask |= 1 << 3\n    return used_mask\n")
        report = run_analysis([bad], rules=all_rules(), restrict_paths=True)
        assert report.findings == []

    def test_syntax_errors_are_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_analysis([tmp_path], rules=all_rules(), restrict_paths=False)
        assert report.parse_errors and report.exit_code == 1


# ----------------------------------------------------------------------
# CLI: JSON schema, baseline round-trip, exit codes
# ----------------------------------------------------------------------
class TestCli:
    def test_json_schema(self, capsys):
        code = main([str(FIXTURES / "rl001_violation.py"), "--json", "--all-files"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1 and payload["exit_code"] == 1
        assert payload["version"] == 1 and payload["tool"] == "repro-lint"
        assert payload["files_scanned"] == 1
        assert [r["id"] for r in payload["rules"]] == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
        ]
        assert set(payload["suppressed"]) == {"waiver", "baseline"}
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "symbol",
                "message",
                "hint",
                "snippet",
            }

    def test_baseline_round_trip(self, tmp_path, capsys):
        target = str(FIXTURES / "rl003_violation.py")
        baseline = tmp_path / "baseline.json"
        # 1. Findings exist without a baseline.
        assert main([target, "--all-files"]) == 1
        # 2. Writing the baseline grandfathers them.
        assert main([target, "--all-files", "--write-baseline", str(baseline)]) == 0
        # 3. Running against the baseline is clean...
        assert main([target, "--all-files", "--baseline", str(baseline)]) == 0
        # ...and a *new* violation still fails.
        extra = tmp_path / "extra.py"
        extra.write_text(
            "class G:\n"
            "    def _notify(self, op):\n"
            "        pass\n"
            "    def poke(self):\n"
            "        self._fingerprint_cache = None\n"
            "        self._succ['x'] = set()\n"
        )
        capsys.readouterr()
        assert main([target, str(extra), "--all-files", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "extra.py" in out and "baselined" in out

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        source = (FIXTURES / "rl003_violation.py").read_text()
        moved = tmp_path / "rl003_violation.py"
        moved.write_text(source)
        baseline = tmp_path / "baseline.json"
        assert main([str(moved), "--all-files", "--write-baseline", str(baseline)]) == 0
        # Unrelated lines added above shift every lineno; keys still match.
        moved.write_text("# a new comment\n# another\n" + source)
        assert main([str(moved), "--all-files", "--baseline", str(baseline)]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path):
        assert main(["--baseline", str(tmp_path / "nope.json"), str(FIXTURES)]) == 2

    def test_unknown_rule_exit_code(self):
        assert main(["--select", "RL999", str(FIXTURES)]) == 2

    def test_missing_path_is_usage_error(self):
        assert main(["definitely/not/a/path"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out


# ----------------------------------------------------------------------
# The meta-test: the live tree is clean (the acceptance bar for CI)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_live_src_is_clean(self):
        report = run_analysis([SRC], rules=all_rules())
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        assert not report.parse_errors, report.parse_errors
        assert len(report.rules) >= 5
        assert len(report.files) > 50
        # The one documented contract spot rides on an inline waiver, not
        # silence: ServiceStats.record_backend's caller-holds-lock note.
        assert report.waived >= 1

    def test_live_cli_json_exits_zero(self, capsys):
        code = main([str(SRC), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0 and payload["findings"] == []
        assert len(payload["rules"]) >= 5
