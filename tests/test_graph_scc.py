"""Tests for Tarjan SCC and the condensation, cross-checked with networkx."""

import random

import networkx as nx
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph
from repro.graph.io import to_networkx
from repro.graph.scc import Condensation, strongly_connected_components


def scc_as_sets(graph: DiGraph) -> set[frozenset]:
    return {frozenset(component) for component in strongly_connected_components(graph)}


class TestSCC:
    def test_path_all_singletons(self):
        graph = path_graph(4)
        assert scc_as_sets(graph) == {frozenset({i}) for i in range(4)}

    def test_cycle_single_component(self):
        graph = cycle_graph(5)
        assert scc_as_sets(graph) == {frozenset(range(5))}

    def test_two_cycles_with_bridge(self):
        graph = DiGraph.from_edges(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        assert scc_as_sets(graph) == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_self_loop_is_singleton_component(self):
        graph = DiGraph.from_edges([("a", "a"), ("a", "b")])
        assert scc_as_sets(graph) == {frozenset({"a"}), frozenset({"b"})}

    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_reverse_topological_emission(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        position = {next(iter(c)): i for i, c in enumerate(components)}
        # Edges must go from later components to earlier ones.
        assert position["b"] < position["a"]
        assert position["c"] < position["b"]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = gnp_digraph(25, 0.08, rng)
        ours = scc_as_sets(graph)
        theirs = {frozenset(c) for c in nx.strongly_connected_components(to_networkx(graph))}
        assert ours == theirs

    def test_deep_chain_does_not_overflow(self):
        # 20k-node chain: the iterative Tarjan must not hit recursion limits.
        graph = path_graph(20_000)
        assert len(strongly_connected_components(graph)) == 20_000


class TestCondensation:
    def test_component_of_map(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        cond = Condensation(graph)
        assert cond.component_of["a"] == cond.component_of["b"]
        assert cond.component_of["a"] != cond.component_of["c"]

    def test_dag_edges_between_components(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        cond = Condensation(graph)
        ab = cond.component_of["a"]
        c = cond.component_of["c"]
        assert c in cond.successors(ab)
        assert not cond.successors(c)

    def test_internal_cycle_flags(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "a"), ("c", "c"), ("c", "d")])
        cond = Condensation(graph)
        assert cond.has_internal_cycle(cond.component_of["a"])
        assert cond.has_internal_cycle(cond.component_of["c"])  # self-loop
        assert cond.is_trivial(cond.component_of["d"])

    def test_reverse_topological_ids_property(self):
        rng = random.Random(3)
        graph = gnp_digraph(30, 0.1, rng)
        cond = Condensation(graph)
        for cid in cond.reverse_topological_ids():
            for succ in cond.successors(cid):
                assert succ < cid  # successors are emitted earlier by Tarjan
