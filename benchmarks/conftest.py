"""Benchmark configuration.

Benchmarks default to the 'smoke' preset so ``pytest benchmarks/
--benchmark-only`` completes in minutes; export ``REPRO_BENCH_SCALE=default``
(or ``paper``) to regenerate the EXPERIMENTS.md numbers at larger scale.
Heavy end-to-end benchmarks run exactly once per measurement
(``benchmark.pedantic`` with one round, via ``bench_utils.run_once``) —
they are experiments, not microbenchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import SCALES


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment preset benchmarks run at."""
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    return SCALES[name]

