"""RL003: DiGraph mutators drop the fingerprint cache AND notify observers.

Every public mutator of a graph-model class must (a) clear
``_fingerprint_cache`` — a stale fingerprint silently serves a stale
prepared index from the LRU and the disk store — and (b) reach a
``self._notify(...)`` call (or the ``if self._delta_logs:`` guard that
wraps one) on *every* path that performed the mutation, or the
``DeltaLog`` incremental-preparation machinery misses the change.

This rule replaces the runtime ``inspect.getsource`` audit the test
suite used to carry: it is the single enforcement point for the
mutator/notify pairing.

Scope: any class with at least one method touching ``_fingerprint_cache``
or ``_notify`` is treated as a graph-model class (in the live tree that
is exactly ``DiGraph``).  The check is a small abstract interpretation
over ``(dropped-cache, notified)`` states per control-flow path:
raising exits are exempt (failed preconditions mutate nothing), and a
path that never dropped the cache is assumed not to have mutated.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, ParsedFile, Project, Rule
from repro.analysis.rules.common import base_name, dotted_name

CACHE_ATTR = "_fingerprint_cache"
NOTIFY_METHOD = "_notify"
GUARD_ATTR = "_delta_logs"

# The internal structure of a graph-model class; writing any of these on
# ``self`` is a mutation that must invalidate the fingerprint cache.
STRUCTURE_ATTRS = frozenset(
    {"_succ", "_pred", "_labels", "_weights", "_attrs", "_edge_count"}
)
_MUTATING_METHODS = frozenset(
    {"add", "discard", "remove", "update", "clear", "pop", "popitem", "setdefault", "append", "extend"}
)

EXEMPT_METHODS = frozenset({"__init__", NOTIFY_METHOD})

# One path state: (dropped the cache, notified since the drop).
_State = tuple[bool, bool]


def _is_cache_drop(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Assign):
        return False
    for target in stmt.targets:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == CACHE_ATTR
            and base_name(target.value) == "self"
        ):
            return True
    return False


def _contains_notify(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] == NOTIFY_METHOD:
                return True
    return False


def _is_notify_stmt(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Expr) and _contains_notify(stmt.value)


def _is_guarded_notify_if(stmt: ast.stmt) -> bool:
    """``if self._delta_logs: ... self._notify(...) ...`` counts wholesale.

    The no-observers branch legitimately skips the call, so the guard as
    a whole satisfies the notify obligation.
    """
    if not isinstance(stmt, ast.If):
        return False
    guard = any(
        isinstance(sub, ast.Attribute) and sub.attr == GUARD_ATTR
        for sub in ast.walk(stmt.test)
    )
    return guard and any(_contains_notify(body_stmt) for body_stmt in stmt.body)


def _self_structure_write(stmt: ast.stmt) -> bool:
    """True when ``stmt`` writes ``self.<structure-attr>`` (or into it)."""

    def writes(target: ast.expr) -> bool:
        cursor = target
        while isinstance(cursor, ast.Subscript):
            cursor = cursor.value
        return (
            isinstance(cursor, ast.Attribute)
            and cursor.attr in STRUCTURE_ATTRS
            and base_name(cursor.value) == "self"
        )

    if isinstance(stmt, ast.Assign):
        if any(writes(t) for t in stmt.targets):
            return True
    if isinstance(stmt, ast.AugAssign) and writes(stmt.target):
        return True
    if isinstance(stmt, ast.Delete) and any(writes(t) for t in stmt.targets):
        return True
    if isinstance(stmt, ast.Expr):
        for sub in ast.walk(stmt.value):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
                and writes(sub.func.value)  # type: ignore[arg-type]
            ):
                return True
    return False


def _method_structure_writes(method: ast.FunctionDef) -> list[ast.stmt]:
    hits = []
    for node in ast.walk(method):
        if isinstance(node, ast.stmt) and _self_structure_write(node):
            hits.append(node)
    return hits


class _PathScanner:
    """Walk a method body tracking (dropped, notified) per path."""

    def __init__(self) -> None:
        self.violations: list[ast.AST] = []

    def scan(
        self, stmts: list[ast.stmt], states: set[_State]
    ) -> set[_State] | None:
        """Returns fall-through states, or None when no path falls through."""
        current: set[_State] | None = set(states)
        for stmt in stmts:
            if current is None:
                break  # unreachable tail
            if _is_cache_drop(stmt):
                current = {(True, False)}
            elif _is_notify_stmt(stmt) or _is_guarded_notify_if(stmt):
                current = {(dropped, True) for dropped, _ in current}
            elif isinstance(stmt, ast.Return):
                self._check_exit(stmt, current)
                current = None
            elif isinstance(stmt, ast.Raise):
                current = None  # failed precondition: nothing mutated
            elif isinstance(stmt, ast.If):
                body_out = self.scan(stmt.body, current)
                else_out = self.scan(stmt.orelse, current) if stmt.orelse else set(current)
                current = self._join(body_out, else_out)
            elif isinstance(stmt, (ast.For, ast.While)):
                body_out = self.scan(stmt.body, current)
                # zero-iteration path keeps the incoming states; an
                # in-loop notify may never run, so it cannot upgrade
                # the loop's guaranteed outcome on its own.
                current = self._join(body_out, set(current))
                if stmt.orelse:
                    current = self.scan(stmt.orelse, current or set())
            elif isinstance(stmt, ast.With):
                current = self.scan(stmt.body, current)
            elif isinstance(stmt, ast.Try):
                body_out = self.scan(stmt.body, current)
                outs = [body_out]
                for handler in stmt.handlers:
                    outs.append(self.scan(handler.body, current))
                merged: set[_State] | None = None
                for out in outs:
                    merged = self._join(merged, out)
                if stmt.finalbody:
                    merged = self.scan(stmt.finalbody, merged or set(current))
                current = merged
        return current

    @staticmethod
    def _join(a: set[_State] | None, b: set[_State] | None) -> set[_State] | None:
        if a is None:
            return None if b is None else set(b)
        if b is None:
            return set(a)
        return a | b

    def _check_exit(self, node: ast.AST, states: set[_State]) -> None:
        if any(dropped and not notified for dropped, notified in states):
            self.violations.append(node)


class MutatorAuditRule(Rule):
    rule_id = "RL003"
    title = "graph mutators drop _fingerprint_cache and _notify on every mutation path"
    hint = (
        "set self._fingerprint_cache = None before mutating, and end every "
        "mutation path with self._notify(...) (an 'if self._delta_logs:' "
        "guard around the call is fine)"
    )
    default_paths = ("graph/digraph.py",)

    def check_file(self, pf: ParsedFile, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(pf.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(pf, node))
        return findings

    def _is_graph_class(self, cls: ast.ClassDef) -> bool:
        for sub in ast.walk(cls):
            if isinstance(sub, ast.Attribute) and sub.attr in (CACHE_ATTR, GUARD_ATTR):
                return True
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is not None and name.split(".")[-1] == NOTIFY_METHOD:
                    return True
        return False

    def _check_class(self, pf: ParsedFile, cls: ast.ClassDef) -> Iterable[Finding]:
        if not self._is_graph_class(cls):
            return
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in EXEMPT_METHODS:
                continue
            drops = [stmt for stmt in ast.walk(method) if isinstance(stmt, ast.stmt) and _is_cache_drop(stmt)]
            writes = _method_structure_writes(method)
            if writes and not drops:
                yield self.finding(
                    pf,
                    writes[0],
                    f"{cls.name}.{method.name} mutates graph structure without "
                    f"clearing {CACHE_ATTR}",
                )
                continue
            if not drops:
                continue  # not a mutator
            scanner = _PathScanner()
            final = scanner.scan(list(method.body), {(False, False)})
            if final is not None:
                scanner._check_exit(method, final)
            for violation in scanner.violations:
                yield self.finding(
                    pf,
                    violation,
                    f"{cls.name}.{method.name} has a mutation path that exits "
                    f"without calling {NOTIFY_METHOD}",
                )
