"""Sharded matching cluster: a router in front of shard-worker services.

The paper's Appendix-B partitioning optimization (Proposition 1) says the
weakly connected components of the candidate-bearing pattern solve
independently.  :func:`~repro.core.optimize.comp_max_card_partitioned`
exploits that inside one process; this module turns the same proposition
into a *cluster shape*: a :class:`ShardedMatchingService` router owns N
worker :class:`~repro.core.service.MatchingService`\\ s and

* **hash-routes whole-graph requests** — a corpus of data graphs is
  spread over the workers by content fingerprint
  (:meth:`ShardPlan.for_corpus`), so each worker's LRU and disk tier only
  ever hold its slice of the corpus; and
* **fans pattern components out across graph shards** — one huge data
  graph is partitioned by :meth:`ShardPlan.for_data_graph`, every
  pattern component is solved against the single shard holding its
  candidates, and the per-component results are merged exactly like the
  single-process partitioned loop (injective mode solves components
  sequentially with used-node exclusion).

Why the sharded solve is *bit-identical* to the unsharded one
-------------------------------------------------------------
A data-graph shard is a union of whole weakly connected components of
``G2`` (hence of whole SCCs — the plan respects the SCC condensation by
construction).  Paths never leave a weakly connected component, so a
shard is **closure-closed**: for nodes ``w, u`` inside a shard,
``w ⇝ u`` holds in the shard subgraph iff it holds in ``G2``.  Shard
subgraphs also preserve ``G2``'s node enumeration order, so a shard's
reachability rows, cycle mask and similarity-preference order are exact
restrictions of the full graph's.  When every candidate of a pattern
component lies in one shard, the greedy engine therefore takes the same
picks, trims and rounds there as it would on the full graph — the same
σ, node for node.  Components whose candidates span several shards are
solved by a **spill** worker against the union of the touched shards
(again closure-closed and order-preserving), so the identity holds for
*every* request: ``shards=N`` ≡ ``shards=1`` ≡
``comp_max_card_partitioned``, both pick rules, both metrics of quality,
injective included.  The equivalence suite (``tests/test_sharding.py``)
and ``benchmarks/bench_sharded.py`` assert this bit-for-bit.

What sharding buys: mask width.  The big-int (and numpy-block) engines
pay per |V2|-bit row op; a shard's rows are only as wide as the shard.
Preparing four 500-node shards costs roughly a quarter of preparing one
2000-node graph, and every solve then runs on four-times-narrower masks
— measured ≥1.5× end-to-end in ``bench_sharded.py`` *without threads*.

All workers (and the spill) may point at one shared
:class:`~repro.core.store.PreparedIndexStore` directory: store writes
are atomic and content-addressed, so concurrent shard writers are safe,
and ``index warm --shards`` pre-warms the per-shard indexes a fleet
loads on boot.  Per-shard ``backends=`` lets operators A/B engines in
production (big-int for tiny shards, numpy for hot wide ones), audited
through each worker's ``ServiceStats.solved_by``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Hashable, Sequence

from repro.core.api import (
    DEFAULT_MATCH_THRESHOLD,
    MatchReport,
    closure_pattern,
    validate_match_options,
)
from repro.core.backends import SolverBackend, get_backend
from repro.core.backends.bitops import has_bit, set_bit
from repro.core.incremental import DeltaLog
from repro.core.optimize import plan_components, solve_component
from repro.core.phom import PHomResult
from repro.core.prefilter import label_bit, label_gate_of, label_signature
from repro.core.service import (
    MatchingService,
    SimilaritySource,
    resolve_similarity,
)
from repro.core.store import PreparedIndexStore
from repro.core.workspace import MatchingWorkspace
from repro.graph.components import weakly_connected_components
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.scc import Condensation
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError
from repro.utils.timing import Stopwatch

__all__ = [
    "ShardPlan",
    "ShardedMatchingService",
    "default_sharded_service",
    "reset_default_sharded_services",
]

Node = Hashable


class ShardPlan:
    """A deterministic assignment of data to shards.

    Two kinds:

    ``graph``
        one data graph partitioned into at most ``shards`` subgraphs.
        The unit of placement is the weakly connected component — the
        finest closure-closed piece of the graph, and automatically a
        union of whole SCCs — so per-shard solves agree bit-for-bit
        with full-graph solves (see the module docstring).  Components
        are balanced onto shards largest-first (ties broken by first
        enumeration position, then lowest shard id), which makes the
        plan a pure function of the graph content.

    ``corpus``
        a stateless hash law assigning whole data graphs to shards by
        content fingerprint — the router's placement rule for
        multi-graph serving.

    Build via :meth:`for_data_graph` / :meth:`for_corpus`.
    """

    def __init__(self, kind: str, shards: int) -> None:
        if kind not in ("graph", "corpus"):
            raise InputError(f"unknown shard-plan kind {kind!r}")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise InputError(f"a shard plan needs at least one shard, got {shards!r}")
        self.kind = kind
        self.shards = shards
        # Graph-kind state (populated by for_data_graph).
        self.graph: DiGraph | None = None
        self.fingerprint: str | None = None
        self.shard_nodes: list[list[Node]] = []
        self.shard_of: dict[Node, int] = {}
        self.cycle_nodes: frozenset[Node] = frozenset()
        self.weak_components: int = 0
        self._position: dict[Node, int] = {}
        self._graphs: dict[object, DiGraph] = {}
        self._fingerprints: dict[object, str] = {}
        #: Per-shard label-set signatures (prefilter shard consultation).
        self._label_sigs: list[int] | None = None
        #: Per-shard label → members indexes, built lazily per shard —
        #: a shard the signature test never consults never builds one.
        self._label_members: dict[int, dict] = {}
        #: Filled by :meth:`evolve`: what the re-plan kept and moved.
        self.evolve_stats: dict | None = None
        #: Filled by :meth:`evolve`: shard id → (old shard graph, old
        #: shard fingerprint) for shards whose content *changed* but
        #: whose predecessor view was cached — the router scopes a
        #: shard-level delta from these so each changed shard's worker
        #: evolves its resident index instead of cold-preparing.
        self._evolve_bases: dict[int, tuple[DiGraph, str]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_corpus(cls, shards: int) -> "ShardPlan":
        """The fingerprint-hash law spreading a corpus over ``shards``."""
        return cls("corpus", shards)

    @classmethod
    def for_data_graph(cls, graph2: DiGraph, shards: int) -> "ShardPlan":
        """Partition ``graph2`` into closure-closed, balanced shards.

        Every weakly connected component lands on exactly one shard
        (largest components placed first onto the currently lightest
        shard), so shards respect the SCC condensation and reachability
        never crosses a shard boundary.  A graph that is one big weak
        component yields a single nonempty shard — the plan never
        splits what Proposition 1 cannot split soundly.
        """
        plan = cls("graph", shards)
        plan.graph = graph2
        plan.fingerprint = graph_fingerprint(graph2)
        plan._position = {node: i for i, node in enumerate(graph2.nodes())}

        weak = weakly_connected_components(graph2)
        plan.weak_components = len(weak)
        assignment: list[list[Node]] = [[] for _ in range(shards)]
        plan._balance_components(weak, assignment, [0] * shards)
        plan._adopt_assignment(assignment)
        plan.cycle_nodes = plan._derive_cycle_nodes(graph2)
        return plan

    def _balance_components(
        self,
        components: list[list[Node]],
        assignment: list[list[Node]],
        loads: list[int],
    ) -> list[int]:
        """Place components largest-first onto the lightest shard.

        Ties break toward the earliest enumeration position, then the
        lowest shard id — the one placement rule both a fresh plan and
        an evolved re-plan must share (divergence would silently change
        which shard a moved component lands on).  ``assignment`` and
        ``loads`` may carry pre-pinned components (the evolve path);
        returns the shard ids that received one, in placement order.
        """
        order = sorted(
            range(len(components)),
            key=lambda c: (
                -len(components[c]),
                min(self._position[n] for n in components[c]),
            ),
        )
        placed = []
        for c in order:
            target = min(range(self.shards), key=lambda s: (loads[s], s))
            assignment[target].extend(components[c])
            loads[target] += len(components[c])
            placed.append(target)
        return placed

    def _adopt_assignment(self, assignment: list[list[Node]]) -> None:
        """Freeze an assignment into enumeration-ordered shard views."""
        self.shard_nodes = [
            sorted(nodes, key=self._position.__getitem__) for nodes in assignment
        ]
        self.shard_of = {
            node: sid for sid, nodes in enumerate(self.shard_nodes) for node in nodes
        }

    @staticmethod
    def _derive_cycle_nodes(graph2: DiGraph) -> frozenset:
        """Nodes on a nonempty cycle: exactly the members of SCCs with an
        internal cycle.  This is the full graph's cycle information —
        identical to every shard's, since cycles live inside SCCs."""
        cond = Condensation(graph2)
        return frozenset(
            node
            for cid, members in enumerate(cond.components)
            if cond.has_internal_cycle(cid)
            for node in members
        )

    def evolve(self, graph2: DiGraph, delta) -> "ShardPlan":
        """Re-plan after a mutation, moving only what the delta touched.

        ``delta`` is the :class:`~repro.core.incremental.DeltaLog`
        recorded since this plan was built.  A weakly connected component
        none of whose nodes were touched (structurally *or* by a
        label/weight change — either moves its shard fingerprint) stays
        pinned to its current shard, so that shard's node list, cached
        subgraph and cached fingerprint — and therefore every worker's
        prepared index and disk file for it — survive the mutation.
        Only changed, merged, split or new components are re-balanced
        (largest-first onto the lightest shard, like a fresh plan).

        The result is a valid closure-closed plan for the new content —
        sharded solves stay bit-identical to the flat partitioned solve —
        but its *placement* may differ from ``for_data_graph`` of the
        same graph: stability is the point (moving a component cold-
        starts its worker), so evolved placement is history-dependent.
        ``evolve_stats`` records what moved.
        """
        self._require_graph()
        if (
            delta.base_fingerprint is not None
            and self.fingerprint is not None
            and delta.base_fingerprint != self.fingerprint
        ):
            raise InputError("delta log does not extend this shard plan")
        affected = set(delta.touched) | set(delta.relabeled) | set(delta.removed_nodes)
        plan = ShardPlan("graph", self.shards)
        plan.graph = graph2
        plan.fingerprint = graph_fingerprint(graph2)
        plan._position = {node: i for i, node in enumerate(graph2.nodes())}

        weak = weakly_connected_components(graph2)
        plan.weak_components = len(weak)
        assignment: list[list[Node]] = [[] for _ in range(self.shards)]
        loads = [0] * self.shards
        stable_only = [True] * self.shards
        repooled: list[list[Node]] = []
        stable = 0
        for component in weak:
            homes = {self.shard_of.get(node) for node in component}
            if len(homes) == 1 and None not in homes and not (affected & set(component)):
                (home,) = homes
                assignment[home].extend(component)
                loads[home] += len(component)
                stable += 1
            else:
                repooled.append(component)
        for target in plan._balance_components(repooled, assignment, loads):
            stable_only[target] = False
        plan._adopt_assignment(assignment)
        plan.cycle_nodes = plan._derive_cycle_nodes(graph2)

        # Carry warm views over: a shard holding exactly its old, fully
        # untouched components has a byte-identical subgraph, so its
        # cached graph and fingerprint (the keys every worker's memory
        # and disk tier serve by) pass straight through.
        reused = [
            sid
            for sid in range(self.shards)
            if stable_only[sid] and plan.shard_nodes[sid] == self.shard_nodes[sid]
        ]
        reused_set = set(reused)
        with self._lock:
            for key, cached in self._graphs.items():
                if (key in reused_set) if isinstance(key, int) else key <= reused_set:
                    plan._graphs[key] = cached
            for key, cached in self._fingerprints.items():
                if (key in reused_set) if isinstance(key, int) else key <= reused_set:
                    plan._fingerprints[key] = cached
            # Changed shards whose *old* view is still cached become
            # delta-evolution bases: the router diffs old vs new shard
            # graph and the shard's worker evolves its resident index.
            for sid in range(self.shards):
                if sid in reused_set or not plan.shard_nodes[sid]:
                    continue
                old_graph = self._graphs.get(sid)
                old_fingerprint = self._fingerprints.get(sid)
                if old_graph is not None and old_fingerprint is not None:
                    plan._evolve_bases[sid] = (old_graph, old_fingerprint)
        plan.evolve_stats = {
            "stable_components": stable,
            "replanned_components": len(repooled),
            "reused_shards": reused,
        }
        return plan

    # ------------------------------------------------------------------
    # Corpus routing
    # ------------------------------------------------------------------
    def shard_of_fingerprint(self, fingerprint: str) -> int:
        """The shard a content fingerprint routes to (stable across runs).

        Rendezvous (highest-random-weight) hashing: every (fingerprint,
        shard) pair gets an independent pseudo-random weight and the
        fingerprint lands on the heaviest shard.  Unlike the bare-modulo
        law this one degrades gracefully under fleet resizing — removing
        a shard remaps *only* the graphs that lived on it (each to its
        runner-up shard), and growing N→N+1 moves ~1/(N+1) of the
        corpus, instead of reshuffling nearly everything.  Ties (a
        64-bit digest collision) break toward the lowest shard id.
        """
        best = 0
        best_weight = -1
        for sid in range(self.shards):
            digest = hashlib.blake2b(
                f"{fingerprint}:{sid}".encode("ascii"), digest_size=8
            ).digest()
            weight = int.from_bytes(digest, "big")
            if weight > best_weight:
                best = sid
                best_weight = weight
        return best

    def shard_of_graph(self, graph2: DiGraph) -> int:
        """The shard a whole data graph is assigned to."""
        return self.shard_of_fingerprint(graph_fingerprint(graph2))

    # ------------------------------------------------------------------
    # Graph-kind views
    # ------------------------------------------------------------------
    def _require_graph(self) -> DiGraph:
        if self.kind != "graph" or self.graph is None:
            raise InputError("this operation needs a graph-kind shard plan")
        return self.graph

    def nonempty_shards(self) -> list[int]:
        """Ids of shards that received at least one node."""
        self._require_graph()
        return [sid for sid, nodes in enumerate(self.shard_nodes) if nodes]

    def shard_graph(self, shard_id: int) -> DiGraph:
        """The induced subgraph of shard ``shard_id`` (cached).

        Node enumeration order follows the full graph's — the property
        the bit-identity argument rests on.
        """
        graph = self._require_graph()
        if not 0 <= shard_id < self.shards:
            raise InputError(f"shard id {shard_id!r} out of range for {self.shards} shards")
        with self._lock:
            cached = self._graphs.get(shard_id)
        if cached is None:
            # Built off-lock: an induced-subgraph build is O(|shard|),
            # and holding the plan lock across it would stall every
            # concurrent router scan.  Racing builders produce equal
            # graphs (plans are immutable), so first-in wins.
            built = graph.subgraph(
                self.shard_nodes[shard_id],
                name=f"{graph.name or 'G2'}/shard{shard_id}",
            )
            with self._lock:
                cached = self._graphs.setdefault(shard_id, built)
        return cached

    def shard_label_signatures(self) -> list[int]:
        """Per-shard hashed label-set signatures, computed once per plan.

        ``sigs[sid]`` has bit :func:`~repro.core.prefilter.label_bit`\\ (L)
        set iff some node of shard ``sid`` carries label ``L``.  The
        router's gated fast path consults a shard only when a pattern
        label's bit is present — a clear bit *proves* the shard has no
        label-equal candidate (hash collisions only ever add false
        presences, never false absences, so skipping stays sound).
        """
        self._require_graph()
        with self._lock:
            cached = self._label_sigs
        if cached is None:
            graph = self.graph
            # Off-lock like the subgraph builds: one pass over every
            # node; racing builders produce equal lists, first-in wins.
            built = [
                label_signature(graph.label(node) for node in nodes)
                for nodes in self.shard_nodes
            ]
            with self._lock:
                if self._label_sigs is None:
                    self._label_sigs = built
                cached = self._label_sigs
        return cached

    def shard_label_members(self, shard_id: int) -> dict:
        """Label → shard nodes carrying it (enumeration order), lazy.

        Built per shard on first consultation; shards the signature test
        excludes never pay for one — that deferred work is what the
        router's ``shards_skipped`` counter measures.
        """
        graph = self._require_graph()
        if not 0 <= shard_id < self.shards:
            raise InputError(
                f"shard id {shard_id!r} out of range for {self.shards} shards"
            )
        with self._lock:
            cached = self._label_members.get(shard_id)
        if cached is None:
            built: dict = {}
            for node in self.shard_nodes[shard_id]:
                built.setdefault(graph.label(node), []).append(node)
            with self._lock:
                cached = self._label_members.setdefault(shard_id, built)
        return cached

    def fingerprint_for(self, key: "int | frozenset[int]") -> str:
        """The content fingerprint of a shard (or union) graph, cached.

        The router hands this to ``prepared_for`` so a hot serving loop
        never re-hashes a shard graph per request — plans are immutable,
        so the digest is computed at most once per view.
        """
        with self._lock:
            cached = self._fingerprints.get(key)
        if cached is None:
            graph = (
                self.shard_graph(key)
                if isinstance(key, int)
                else self.union_graph(key)
            )
            cached = graph_fingerprint(graph)
            with self._lock:
                self._fingerprints[key] = cached
        return cached

    def union_graph(self, shard_ids: frozenset[int]) -> DiGraph:
        """The induced subgraph over a union of shards (the spill view).

        Used for pattern components whose candidates span several shards;
        a union of closure-closed shards is closure-closed again, and
        merging the shard node lists by enumeration position preserves
        the full graph's order.
        """
        graph = self._require_graph()
        key = frozenset(shard_ids)
        if not key:
            raise InputError("a spill union needs at least one shard")
        with self._lock:
            cached = self._graphs.get(key)
        if cached is None:
            # Off-lock for the same reason as shard_graph: the union
            # build is linear in the spilled shards' total size.
            nodes = sorted(
                (node for sid in key for node in self.shard_nodes[sid]),
                key=self._position.__getitem__,
            )
            tag = "+".join(str(sid) for sid in sorted(key))
            built = graph.subgraph(
                nodes, name=f"{graph.name or 'G2'}/shards{tag}"
            )
            with self._lock:
                cached = self._graphs.setdefault(key, built)
        return cached

    def describe(self) -> dict:
        """A JSON-friendly summary (CLI summaries, stats snapshots)."""
        payload: dict = {"kind": self.kind, "shards": self.shards}
        if self.kind == "graph":
            payload["weak_components"] = self.weak_components
            payload["shard_sizes"] = [len(nodes) for nodes in self.shard_nodes]
            payload["nonempty_shards"] = len(self.nonempty_shards())
        return payload

    def __repr__(self) -> str:
        if self.kind == "corpus":
            return f"<ShardPlan corpus shards={self.shards}>"
        sizes = "/".join(str(len(nodes)) for nodes in self.shard_nodes)
        return f"<ShardPlan graph shards={self.shards} sizes={sizes}>"


class ShardedMatchingService:
    """A router in front of ``shards`` worker services plus a spill worker.

    ``store_dir`` (or an existing ``store``) is shared by every worker —
    the PR-2 store's writes are atomic and content-addressed, so N shard
    writers warming one directory never corrupt each other.  ``backend``
    sets every worker's engine; ``backends`` (a list of ``shards`` names
    or instances) pins one per shard for production A/B runs.  The spill
    worker — which solves pattern components whose candidates span
    several shards against the union of the touched shards — runs the
    router-level default backend.  ``chain=True`` makes every worker
    persist delta-evolved shard indexes as compact store delta records
    (``chain_writes`` / ``chain_bytes_saved`` in the aggregate snapshot)
    instead of full payload rewrites — the streaming-graph write path.

    Under ``backend="mmap"`` the shared store pays off twice: each
    worker's disk tier becomes a zero-copy mapped open, and the mmap
    backend interns mappings process-wide by file identity, so every
    worker (and the spill worker) serving one fingerprint shares a
    single mapping — one OS page cache per prepared graph, no matter
    how many shards solve over it (``mmap_opens`` / ``mapped_bytes``
    aggregate across workers in :meth:`stats_snapshot`).

    Request surface:

    * :meth:`match` / :meth:`match_many` — whole-graph requests,
      hash-routed to the worker owning ``graph2``'s fingerprint;
    * :meth:`match_sharded` / :meth:`match_many_sharded` — one data
      graph partitioned by :meth:`plan_for`, pattern components fanned
      out across shard workers and merged under Proposition 1 semantics
      (bit-identical to the single-process partitioned solve — module
      docstring has the argument).
    """

    def __init__(
        self,
        shards: int,
        max_prepared: int = 8,
        store: PreparedIndexStore | None = None,
        store_dir: str | None = None,
        backend: "str | SolverBackend | None" = None,
        backends: "Sequence[str | SolverBackend] | None" = None,
        max_plans: int = 8,
        chain: bool = False,
        latency_hook: "Callable[[str, float], None] | None" = None,
    ) -> None:
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise InputError(f"a sharded service needs at least one shard, got {shards!r}")
        if store is not None and store_dir is not None:
            raise InputError("pass either store= or store_dir=, not both")
        if store_dir is not None:
            store = PreparedIndexStore(store_dir)
        if max_plans < 1:
            raise InputError(f"the plan cache needs at least one slot, got {max_plans!r}")
        self.shards = shards
        #: Router-level default backend (spill solves, per-call fallback).
        self.backend: SolverBackend = get_backend(backend)
        if backends is None:
            worker_backends: list[SolverBackend] = [self.backend] * shards
        else:
            if len(backends) != shards:
                raise InputError(
                    f"backends= needs one entry per shard ({shards}), got {len(backends)}"
                )
            worker_backends = [get_backend(b) for b in backends]
        #: One worker service per shard; all share the (optional) store.
        self.workers: list[MatchingService] = [
            MatchingService(max_prepared, store=store, backend=wb, chain=chain)
            for wb in worker_backends
        ]
        #: The spill worker for components whose candidates span shards.
        self.spill = MatchingService(
            max_prepared, store=store, backend=self.backend, chain=chain
        )
        self._corpus_plan = ShardPlan.for_corpus(shards)
        self.max_plans = max_plans
        self._plans: OrderedDict[str, ShardPlan] = OrderedDict()
        self._lock = threading.Lock()
        #: Request-level latency hook, fed by the *router* (workers keep
        #: no hook: one observation per request, not per component) —
        #: semantics as in :class:`MatchingService`.
        self.latency_hook = latency_hook
        self._counters = {
            "routed_calls": 0,
            "sharded_solves": 0,
            "fanout_components": 0,
            "spill_components": 0,
            "plans_built": 0,
            "plans_evolved": 0,
            "shards_replanned": 0,
            "batch_seconds": 0.0,
            "batches": 0,
            "pairs_pruned": 0,
            "shards_skipped": 0,
            "filter_bypasses": 0,
            "filter_seconds": 0.0,
            "hook_calls": 0,
            "hook_seconds": 0.0,
        }

    def _observe(self, op: str, seconds: float) -> None:
        """Feed one completed request's wall-clock to the latency hook.

        Mirrors :meth:`MatchingService._observe`: runs after every
        timing stopwatch and counter update, outside the router lock,
        with hook time accounted in ``hook_calls``/``hook_seconds`` and
        hook exceptions swallowed.
        """
        hook = self.latency_hook
        if hook is None:
            return
        with Stopwatch() as watch:
            try:
                hook(op, seconds)
            except Exception:
                pass
        with self._lock:
            self._counters["hook_calls"] += 1
            self._counters["hook_seconds"] += watch.elapsed

    @property
    def store(self) -> PreparedIndexStore | None:
        """The shared disk tier, if one is attached."""
        return self.workers[0].store

    # ------------------------------------------------------------------
    # Corpus routing: whole-graph requests
    # ------------------------------------------------------------------
    def worker_for(self, graph2: DiGraph) -> MatchingService:
        """The worker owning ``graph2`` under the corpus hash law."""
        return self.workers[self._corpus_plan.shard_of_graph(graph2)]

    def match(
        self,
        graph1: DiGraph,
        graph2: DiGraph,
        mat: SimilaritySource,
        xi: float,
        **options,
    ) -> MatchReport:
        """One whole-graph request, hash-routed to ``graph2``'s worker.

        Exactly :meth:`MatchingService.match` on the owning shard —
        routing changes which worker's cache warms, never the result.
        """
        worker = self.worker_for(graph2)
        with self._lock:
            self._counters["routed_calls"] += 1
        with Stopwatch() as watch:
            report = worker.match(graph1, graph2, mat, xi, **options)
        self._observe("match", watch.elapsed)
        return report

    def match_many(
        self,
        patterns: Sequence[DiGraph],
        graph2: DiGraph,
        mat: SimilaritySource,
        xi: float,
        **options,
    ) -> list[MatchReport]:
        """A batch against one data graph, hash-routed to its worker."""
        patterns = list(patterns)
        worker = self.worker_for(graph2)
        with self._lock:
            self._counters["routed_calls"] += len(patterns)
        with Stopwatch() as watch:
            reports = worker.match_many(patterns, graph2, mat, xi, **options)
        self._observe("batch", watch.elapsed)
        return reports

    # ------------------------------------------------------------------
    # Graph sharding: component fan-out
    # ------------------------------------------------------------------
    def plan_for(self, graph2: DiGraph) -> ShardPlan:
        """The (cached) graph-kind shard plan of ``graph2``.

        Plans are keyed by content fingerprint in a small LRU, mirroring
        the prepared-graph cache.  The router also attaches a
        :class:`~repro.core.incremental.DeltaLog` to every graph it
        plans: when the same graph object mutates in place, the next
        request **evolves** the old plan (:meth:`ShardPlan.evolve`) —
        components the delta never touched keep their shard, cached
        subgraph and fingerprint, so only the changed shards' workers go
        cold (counted in ``plans_evolved`` / ``shards_replanned``).
        """
        key = graph_fingerprint(graph2)
        log = DeltaLog.find(graph2, self)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
            old_plan = (
                self._plans.get(log.base_fingerprint)
                if log is not None
                and log.base_fingerprint is not None
                and log.base_fingerprint != key
                else None
            )
        evolved = 0
        built = None
        if old_plan is not None:
            try:
                built = old_plan.evolve(graph2, log)  # off-lock
                evolved = 1
            except InputError:
                built = None
        if built is None:
            built = ShardPlan.for_data_graph(graph2, self.shards)  # off-lock
        self._track(graph2, key)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                return plan  # another thread planned it meanwhile
            self._plans[key] = built
            self._counters["plans_built"] += 1 - evolved
            self._counters["plans_evolved"] += evolved
            if evolved:
                reused = len((built.evolve_stats or {}).get("reused_shards", ()))
                self._counters["shards_replanned"] += self.shards - reused
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return built

    def _track(self, graph2: DiGraph, key: str) -> None:
        """Attach (or rebase) the router's delta log on ``graph2``."""
        DeltaLog.track(graph2, self, key)

    def update_graph(self, graph2: DiGraph) -> ShardPlan:
        """Re-plan a mutated data graph eagerly (off the serving path).

        Returns the (evolved, when possible) shard plan for the graph's
        new content; untouched components keep their shards, so the
        workers serving them stay warm.  Per-shard prepared indexes for
        *changed* shards rebuild lazily on the next request that routes
        to them.
        """
        with Stopwatch() as watch:
            plan = self.plan_for(graph2)
        self._observe("update", watch.elapsed)
        return plan

    def match_sharded(
        self,
        graph1: DiGraph,
        graph2: DiGraph,
        mat: SimilaritySource,
        xi: float,
        metric: str = "cardinality",
        injective: bool = False,
        threshold: float = DEFAULT_MATCH_THRESHOLD,
        symmetric: bool = False,
        pick: str = "similarity",
        backend: "str | SolverBackend | None" = None,
        plan: ShardPlan | None = None,
        max_workers: int | None = None,
        prefilter: str = "auto",
    ) -> MatchReport:
        """One pattern against one *sharded* data graph.

        Semantically the Appendix-B partitioned solve — each weakly
        connected component of the candidate-bearing pattern is solved
        independently — executed across the shard workers: a component
        runs on the one shard holding all its candidates, or on the
        spill worker over the union of the shards it touches.  Injective
        mode solves components sequentially, excluding data nodes used
        by earlier components, exactly like the single-process loop;
        non-injective components may fan out over ``max_workers``
        threads (the merge order stays the plan order either way).

        ``backend`` overrides every touched worker's engine for this
        call; ``plan`` skips the plan-cache lookup (batch callers pass
        the plan they already fetched).  ``prefilter`` engages the
        candidate-pruning pipeline (:mod:`repro.core.prefilter`):
        ``auto`` routes each shard workspace only its own components'
        candidate rows (``pairs_pruned``) and, for a label-gated
        similarity source, builds rows from shard label indexes without
        evaluating a matrix, consulting only shards whose label
        signature can host a pattern label (``shards_skipped``) —
        everything bit-identical to ``off``; ``strict`` adds sketch pair
        pruning (the approximate tier).
        """
        if metric != "cardinality":
            raise InputError("sharded matching is implemented for the cardinality metric")
        solver = None if backend is None else get_backend(backend)
        validate_match_options(
            metric, threshold, xi, partitioned=True, pick=pick,
            backend=self.backend if solver is None else solver,
            prefilter=prefilter,
        )  # pre-flight: a typo'd option must not cost a shard prepare
        if plan is None:
            plan = self.plan_for(graph2)
        elif plan.kind != "graph" or (
            # Same object (every batch/hot-loop shape) verifies for free;
            # only a *different* graph object pays a digest comparison.
            plan.graph is not graph2
            and plan.fingerprint != graph_fingerprint(graph2)
        ):
            raise InputError("shard plan does not describe this data graph")
        gate = None if prefilter == "off" else label_gate_of(mat)
        if gate is None:
            resolved = resolve_similarity(mat, graph1, graph2)
        else:
            # Gated fast path: candidate rows come from shard label
            # indexes inside _solve_components; no matrix is evaluated.
            resolved = mat
        pattern = closure_pattern(graph1) if symmetric else graph1
        with Stopwatch() as watch:
            result, fanout, spills, filtered = self._solve_components(
                pattern, resolved, xi, injective, pick, solver, plan, max_workers,
                prefilter=prefilter, gate=gate,
            )
        result.stats["elapsed_seconds"] = watch.elapsed
        with self._lock:
            self._counters["sharded_solves"] += 1
            self._counters["fanout_components"] += fanout
            self._counters["spill_components"] += spills
            if prefilter != "off":
                if gate is None:
                    self._counters["filter_bypasses"] += 1
                self._counters["pairs_pruned"] += filtered["pairs_pruned"]
                self._counters["shards_skipped"] += filtered["shards_skipped"]
                self._counters["filter_seconds"] += filtered["filter_seconds"]
        self._observe("match_sharded", watch.elapsed)
        quality = result.qual_card
        return MatchReport(
            matched=quality >= threshold,
            quality=quality,
            threshold=threshold,
            metric=metric,
            result=result,
        )

    def match_many_sharded(
        self,
        patterns: Sequence[DiGraph],
        graph2: DiGraph,
        mat: SimilaritySource,
        xi: float,
        metric: str = "cardinality",
        injective: bool = False,
        threshold: float = DEFAULT_MATCH_THRESHOLD,
        symmetric: bool = False,
        pick: str = "similarity",
        backend: "str | SolverBackend | None" = None,
        max_workers: int | None = None,
        prefilter: str = "auto",
    ) -> list[MatchReport]:
        """Every pattern against one sharded data graph, planned once.

        Reports come back in pattern order.  ``max_workers > 1`` fans
        whole-pattern solves out over a thread pool (each pattern's
        component merge stays sequential, so injective mode is safe to
        parallelise *across* patterns); results are identical to the
        sequential path.
        """
        patterns = list(patterns)
        plan = self.plan_for(graph2)

        def solve(graph1: DiGraph) -> MatchReport:
            return self.match_sharded(
                graph1, graph2, mat, xi,
                metric=metric, injective=injective, threshold=threshold,
                symmetric=symmetric, pick=pick, backend=backend, plan=plan,
                prefilter=prefilter,
            )

        with Stopwatch() as watch:
            if max_workers is not None and max_workers > 1 and len(patterns) > 1:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    reports = list(pool.map(solve, patterns))
            else:
                reports = [solve(graph1) for graph1 in patterns]
        with self._lock:
            # Per-batch sum, normalized by "batches" — the same contract
            # as ServiceStats.batch_seconds under concurrent callers.
            self._counters["batch_seconds"] += watch.elapsed
            self._counters["batches"] += 1
        self._observe("batch", watch.elapsed)
        return reports

    def _scope_shard_delta(
        self,
        plan: ShardPlan,
        shard_id: int,
        shard_graph: DiGraph,
        shard_fingerprint: str,
        service: MatchingService,
    ) -> "DeltaLog | None":
        """Scope the plan's mutation onto one changed shard as a delta.

        An evolved plan records the previous (graph, fingerprint) view
        of every shard whose content changed (``ShardPlan.evolve``);
        here the router diffs old vs new shard subgraph and attaches the
        result as a :class:`~repro.core.incremental.DeltaLog` owned by
        the shard worker's cache, so the worker's next ``prepared_for``
        **evolves** its resident base index through the shard-scoped
        delta (``delta_hits`` on the worker, ``shard_evolves`` once the
        evolution lands) instead of cold-preparing the whole shard.
        Returns the log — fresh, or the one a previous request already
        attached — or ``None`` when there is nothing to scope; every
        refusal path simply leaves the ordinary tiers in charge.
        """
        with plan._lock:
            base = plan._evolve_bases.get(shard_id)
        if base is None:
            return None
        base_graph, base_fingerprint = base
        if base_fingerprint == shard_fingerprint:
            return None  # content did not actually move for this shard
        cache = service.cache
        existing = DeltaLog.find(shard_graph, cache)
        if existing is not None:
            return existing
        try:
            return DeltaLog.from_diff(
                base_graph,
                shard_graph,
                graph=shard_graph,
                base_fingerprint=base_fingerprint,
                owner=cache,
            )
        except InputError:
            return None

    # ------------------------------------------------------------------
    def _solve_components(
        self,
        pattern: DiGraph,
        mat: SimilarityMatrix,
        xi: float,
        injective: bool,
        pick: str,
        solver: SolverBackend | None,
        plan: ShardPlan,
        max_workers: int | None,
        prefilter: str = "off",
        gate=None,
    ) -> tuple[PHomResult, int, int, dict]:
        """Plan, route, solve and merge one pattern's components.

        Mirrors ``comp_max_card_partitioned`` exactly (same planner,
        same per-component solver, same merge order and float
        accumulation order) with the data-graph side swapped for shard
        subgraphs.  Returns ``(result, single_shard_components,
        spill_components, filter_stats)``.

        ``gate`` (a label-equality source, or ``None``) switches the
        candidate scan to the prefilter fast path: rows come straight
        from shard label indexes — consulting only shards whose label
        signature can host a pattern label — so no similarity matrix is
        ever evaluated.  Row *content* is identical to the ``mat.row``
        scan (constant gate score, ξ ∈ (0, 1] so the threshold always
        passes, same cycle filter); only dict insertion order differs,
        which nothing downstream observes (candidate masks OR entries,
        preference lists sort, routes are frozensets, quality looks
        pairs up individually).
        """
        nodes1: list[Node] = list(pattern.nodes())
        n1 = len(nodes1)
        index1 = {node: i for i, node in enumerate(nodes1)}
        prev = [[index1[p] for p in pattern.predecessors(v)] for v in nodes1]
        post = [[index1[s] for s in pattern.successors(v)] for v in nodes1]

        filtered = {"pairs_pruned": 0, "shards_skipped": 0, "filter_seconds": 0.0}
        # Candidate sets, computed the way a workspace would: membership
        # in G2, mat ≥ ξ, self-loop nodes restricted to cycle members.
        cand: list[dict[Node, float]] = []
        if gate is not None:
            with Stopwatch() as filter_watch:
                sigs = plan.shard_label_signatures()
                nonempty = plan.nonempty_shards()
                bits = {label_bit(pattern.label(node)) for node in nodes1}
                consulted = [
                    sid for sid in nonempty
                    if any(has_bit(sigs[sid], bit) for bit in bits)
                ]
                filtered["shards_skipped"] = len(nonempty) - len(consulted)
                score = gate.score  # constant; ξ ≤ 1.0 ≤ score by contract
                for node in nodes1:
                    label = pattern.label(node)
                    row: dict[Node, float] = {}
                    for sid in consulted:
                        for u in plan.shard_label_members(sid).get(label, ()):
                            row[u] = score
                    if pattern.has_self_loop(node):
                        row = {u: s for u, s in row.items() if u in plan.cycle_nodes}
                    cand.append(row)
            filtered["filter_seconds"] = filter_watch.elapsed
        else:
            for node in nodes1:
                row = {
                    u: score
                    for u, score in mat.row(node).items()
                    if u in plan.shard_of and score >= xi
                }
                if pattern.has_self_loop(node):
                    row = {u: s for u, s in row.items() if u in plan.cycle_nodes}
                cand.append(row)

        components, removed = plan_components(
            n1, prev, post, [bool(row) for row in cand]
        )
        routes: list[frozenset[int]] = [
            frozenset(plan.shard_of[u] for v in component for u in cand[v])
            for component in components
        ]
        # Which route key each pattern node's component landed on —
        # candidate-free nodes have no route (their rows are empty, so
        # scoping them to nothing changes nothing).
        member_route: dict[int, frozenset[int]] = {}
        for component, route in zip(components, routes):
            for v in component:
                member_route[v] = route

        # One workspace per touched shard (or shard union), built once
        # per request — the prepared index underneath is the cached,
        # possibly store-loaded one, so repeat requests pay pattern-side
        # work only.
        workspaces: dict[frozenset[int], tuple[MatchingWorkspace, MatchingService]] = {}

        def workspace_for(key: frozenset[int]) -> tuple[MatchingWorkspace, MatchingService]:
            entry = workspaces.get(key)
            if entry is None:
                scoped = None
                if len(key) == 1:
                    (shard_id,) = key
                    service = self.workers[shard_id]
                    shard_graph = plan.shard_graph(shard_id)
                    shard_fingerprint = plan.fingerprint_for(shard_id)
                    scoped = self._scope_shard_delta(
                        plan, shard_id, shard_graph, shard_fingerprint, service
                    )
                else:
                    service = self.spill
                    shard_graph = plan.union_graph(key)
                    shard_fingerprint = plan.fingerprint_for(key)
                scoped_pending = (
                    scoped is not None
                    and scoped.base_fingerprint is not None
                    and scoped.base_fingerprint != shard_fingerprint
                )
                prepared = service.prepared_for(
                    shard_graph, fingerprint=shard_fingerprint
                )
                if (
                    scoped_pending
                    # A consumed delta rebases the log onto the new
                    # fingerprint; full rebuilds inside apply_delta are
                    # honest cold prepares, not shard evolutions.
                    and scoped.base_fingerprint == shard_fingerprint
                    and prepared.delta_stats is not None
                    and not prepared.delta_stats.get("full_rebuild")
                ):
                    with plan._lock:
                        fired = plan._evolve_bases.pop(shard_id, None)
                    if fired is not None:  # count once per plan and shard
                        with service.stats.lock:
                            service.stats.shard_evolves += 1
                if prefilter != "off":
                    # Route-scoped rows: a workspace only ever solves
                    # the components routed to its key, and the engine
                    # reads exactly the rows of a component's members —
                    # so rows for pattern nodes routed elsewhere are
                    # dropped before construction instead of being
                    # re-scanned per shard.  Result-preserving by the
                    # route-width argument; the drops are what
                    # ``pairs_pruned`` counts.
                    rows = [
                        cand[v] if member_route.get(v) == key else {}
                        for v in range(n1)
                    ]
                    filtered["pairs_pruned"] += sum(
                        len(cand[v]) for v in range(n1)
                        if member_route.get(v) != key
                    )
                else:
                    rows = cand
                entry = (
                    MatchingWorkspace(
                        pattern, prepared.graph, mat, xi, prepared=prepared,
                        backend=service.backend if solver is None else solver,
                        # The routing scan above already produced the ξ- and
                        # cycle-filtered rows; hand them down so the shard
                        # workspace does not re-scan the similarity matrix.
                        candidate_rows=rows,
                        # Rows legitimately name nodes outside this
                        # shard view; the workspace drops them.
                        partial_rows=True,
                        prefilter="strict" if prefilter == "strict" else None,
                    ),
                    service,
                )
                workspaces[key] = entry
            return entry

        used_nodes: set[Node] = set()

        def solve_one(idx: int) -> tuple[list[tuple[int, Node]], int]:
            workspace, service = workspace_for(routes[idx])
            used_mask = 0
            if injective and used_nodes:
                index2 = workspace.index2
                for node in used_nodes:
                    u = index2.get(node)
                    if u is not None:
                        used_mask = set_bit(used_mask, u)
            with Stopwatch() as solve_watch:
                pairs, rounds = solve_component(
                    workspace, components[idx], used_mask, injective, pick
                )
            # Worker stats count *component* solves — the unit of work a
            # shard actually performs; the router's sharded_solves
            # counter tracks pattern-level requests.
            service._record_solves(1, solve_watch.elapsed, backend=workspace.backend)
            return [(v, workspace.nodes2[u]) for v, u in pairs], rounds

        all_pairs: list[tuple[int, Node]] = []
        rounds = 0
        if (
            not injective
            and max_workers is not None
            and max_workers > 1
            and len(components) > 1
        ):
            # Workspaces are built serially (their dict is unguarded and
            # the prepare underneath is the expensive part anyway), then
            # independent component solves fan out.  pool.map preserves
            # plan order, so the merge below is the sequential merge.
            for key in routes:
                workspace_for(key)
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                solved = list(pool.map(solve_one, range(len(components))))
            for pairs, component_rounds in solved:
                all_pairs.extend(pairs)
                rounds += component_rounds
        else:
            for idx in range(len(components)):
                pairs, component_rounds = solve_one(idx)
                all_pairs.extend(pairs)
                rounds += component_rounds
                if injective:
                    used_nodes.update(u for _, u in pairs)

        # Quality, with the exact accumulation order of the
        # single-process path (floats must match bit-for-bit).
        weights = [pattern.weight(node) for node in nodes1]
        total_weight = sum(weights)
        qual_card = 1.0 if n1 == 0 else len(all_pairs) / n1
        if total_weight == 0.0:
            qual_sim = 1.0
        else:
            captured = sum(weights[v] * cand[v][u] for v, u in all_pairs)
            qual_sim = captured / total_weight

        fanout = sum(1 for key in routes if len(key) == 1)
        spills = len(routes) - fanout
        result = PHomResult(
            mapping={nodes1[v]: u for v, u in all_pairs},
            qual_card=qual_card,
            qual_sim=qual_sim,
            injective=injective,
            stats={
                "components": len(components),
                "candidate_free": len(removed),
                "rounds": rounds,
                "elapsed_seconds": 0.0,  # stamped by match_sharded
                "shards": plan.shards,
                "fanout_components": fanout,
                "spill_components": spills,
            },
        )
        if prefilter == "strict":
            # Strict sketch pruning happens inside each workspace; fold
            # the per-workspace counts into this request's filter stats.
            filtered["pairs_pruned"] += sum(
                workspace.pairs_pruned for workspace, _ in workspaces.values()
            )
        return result, fanout, spills, filtered

    # ------------------------------------------------------------------
    # Fleet statistics
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Aggregated service statistics with a per-shard breakdown.

        Each worker snapshot is internally consistent (taken under that
        worker's stats lock); the aggregate sums the numeric fields and
        merges ``solved_by``.  Worker ``calls`` count the *component*
        solves a shard performed — the router's ``sharded_solves`` is
        the pattern-level request count, and ``routed_calls`` counts
        hash-routed whole-graph requests.
        """
        per_shard = [worker.stats.snapshot() for worker in self.workers]
        spill = self.spill.stats.snapshot()
        aggregate: dict = {}
        for snap in per_shard + [spill]:
            for field, value in snap.items():
                if field == "solved_by":
                    merged = aggregate.setdefault("solved_by", {})
                    for name, count in value.items():
                        merged[name] = merged.get(name, 0) + count
                elif field == "backend":
                    continue
                else:
                    aggregate[field] = aggregate.get(field, 0) + value
        aggregate["backend"] = self.backend.name
        with self._lock:
            counters = dict(self._counters)
        return {
            "shards": self.shards,
            **counters,
            "aggregate": aggregate,
            "per_shard": per_shard,
            "spill": spill,
        }

    def __repr__(self) -> str:
        return f"<ShardedMatchingService shards={self.shards} backend={self.backend.name!r}>"


_default_sharded: dict[int, ShardedMatchingService] = {}
_default_sharded_lock = threading.Lock()


def default_sharded_service(shards: int) -> ShardedMatchingService:
    """The process-wide sharded router for ``shards`` shards.

    ``repro.core.api.match(shards=N)`` routes through this, so repeated
    sharded calls against the same data graph reuse its shard plan and
    every worker's prepared indexes.  One router is kept per shard
    count.
    """
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise InputError(f"shards must be a positive integer, got {shards!r}")
    with _default_sharded_lock:
        service = _default_sharded.get(shards)
        if service is None:
            service = ShardedMatchingService(shards)
            _default_sharded[shards] = service
        return service


def reset_default_sharded_services() -> None:
    """Drop every process-wide sharded router (releases cached indexes)."""
    with _default_sharded_lock:
        _default_sharded.clear()
