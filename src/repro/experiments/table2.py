"""EXP-T2 — regenerate Table 2: Web graphs and skeletons of real-life data.

For each of the three (simulated) site categories, report the full-graph
statistics (#nodes, #edges, avgDeg, maxDeg) and the sizes of both skeleton
variants (α = 0.2 degree skeleton; top-20 by degree).

Run: ``python -m repro.experiments.table2 [--scale default] [--csv out.csv]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.datasets.skeleton import degree_skeleton, top_k_skeleton
from repro.datasets.webbase import SiteArchive, generate_archive, paper_sites
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.report import render_table, save_csv
from repro.graph.stats import graph_stats

__all__ = ["Table2Row", "compute_table2", "render", "main"]

#: The α of Skeletons 1 (Section 6).
SKELETON_ALPHA = 0.2


@dataclass(frozen=True)
class Table2Row:
    """One Table 2 line: a site's graph and skeleton statistics."""

    site: str
    description: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    skeleton1_nodes: int
    skeleton1_edges: int
    skeleton2_nodes: int
    skeleton2_edges: int


def row_for_archive(archive: SiteArchive, top_k: int) -> Table2Row:
    """Summarise the archive's oldest version (the pattern graph)."""
    graph = archive.pattern
    stats = graph_stats(graph)
    skeleton1 = degree_skeleton(graph, SKELETON_ALPHA)
    skeleton2 = top_k_skeleton(graph, top_k)
    return Table2Row(
        site=archive.profile.key,
        description=archive.profile.description,
        num_nodes=stats.num_nodes,
        num_edges=stats.num_edges,
        avg_degree=stats.avg_degree,
        max_degree=stats.max_degree,
        skeleton1_nodes=skeleton1.num_nodes(),
        skeleton1_edges=skeleton1.num_edges(),
        skeleton2_nodes=skeleton2.num_nodes(),
        skeleton2_edges=skeleton2.num_edges(),
    )


def compute_table2(scale: ExperimentScale) -> list[Table2Row]:
    """Generate the three archives and summarise each."""
    rows = []
    for profile in paper_sites().values():
        archive = generate_archive(
            profile,
            num_versions=1,  # Table 2 describes the graphs, not the matching
            scale=scale.site_scale,
            seed=scale.seed,
        )
        rows.append(row_for_archive(archive, scale.top_k))
    return rows


def render(rows: list[Table2Row], scale: ExperimentScale) -> str:
    """Render in the paper's column order."""
    headers = [
        "Site",
        "category",
        "#nodes",
        "#edges",
        "avgDeg",
        "maxDeg",
        "skel1 #nodes",
        "skel1 #edges",
        f"top-{scale.top_k} #nodes",
        f"top-{scale.top_k} #edges",
    ]
    table_rows = [
        (
            row.site,
            row.description,
            row.num_nodes,
            row.num_edges,
            f"{row.avg_degree:.2f}",
            row.max_degree,
            row.skeleton1_nodes,
            row.skeleton1_edges,
            row.skeleton2_nodes,
            row.skeleton2_edges,
        )
        for row in rows
    ]
    title = f"Table 2 — Web graphs and skeletons (scale={scale.name})"
    return render_table(title, headers, table_rows)


def main(argv: list[str] | None = None) -> list[Table2Row]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="smoke | default | paper")
    parser.add_argument("--csv", default=None, help="also write rows to this CSV path")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    rows = compute_table2(scale)
    print(render(rows, scale))
    if args.csv:
        save_csv(
            args.csv,
            [
                "site",
                "nodes",
                "edges",
                "avg_degree",
                "max_degree",
                "skel1_nodes",
                "skel1_edges",
                "skel2_nodes",
                "skel2_edges",
            ],
            [
                (
                    row.site,
                    row.num_nodes,
                    row.num_edges,
                    row.avg_degree,
                    row.max_degree,
                    row.skeleton1_nodes,
                    row.skeleton1_edges,
                    row.skeleton2_nodes,
                    row.skeleton2_edges,
                )
                for row in rows
            ],
        )
    return rows


if __name__ == "__main__":
    main()
