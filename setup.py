"""Setup shim for legacy editable installs (`pip install -e .`).

The environment ships setuptools without the `wheel` package, so PEP 517
editable builds (which require bdist_wheel) fail; this shim lets pip fall
back to `setup.py develop`.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
