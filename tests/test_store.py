"""Tests for the persistent prepared-index store and the two-tier cache.

The contracts under test: a saved index restores *bit-identically*
(masks, node order, match reports), every flavour of file damage is a
miss rather than a crash, the service's disk tier accounts its
hits/misses/timings, and the ``index`` CLI round-trips a store
directory that a separate ``batch`` process can then serve from.
"""

from __future__ import annotations

import json
import random

import pytest

from helpers import make_random_instance
from repro.__main__ import main
from repro.core.api import match, match_prepared
from repro.core.prepared import PreparedDataGraph, prepare_data_graph
from repro.core.service import MatchingService, reset_default_service
from repro.core.store import STORE_SUFFIX, PreparedIndexStore
from repro.graph.digraph import DiGraph
from repro.graph.fingerprint import graph_fingerprint, is_fingerprint
from repro.graph.generators import random_digraph
from repro.graph.io import dump_json
from repro.similarity.labels import label_equality_matrix
from repro.utils.errors import InputError


@pytest.fixture
def instance():
    """A (pattern, data, mat) triple plus the data graph's fingerprint."""
    g1, g2, mat = make_random_instance(11, n1=5, n2=20)
    return g1, g2, mat, graph_fingerprint(g2)


def identical_masks(a: PreparedDataGraph, b: PreparedDataGraph) -> bool:
    return (
        a.from_mask == b.from_mask
        and a.to_mask == b.to_mask
        and a.cycle_mask == b.cycle_mask
        and a.nodes2 == b.nodes2
        and a.index2 == b.index2
        and a.num_edges() == b.num_edges()
    )


# ----------------------------------------------------------------------
# Payload round-trip
# ----------------------------------------------------------------------
class TestPayload:
    def test_round_trip_bit_identity(self, instance):
        _, g2, _, _ = instance
        prepared = prepare_data_graph(g2)
        restored = PreparedDataGraph.from_payload(g2, prepared.to_payload())
        assert identical_masks(prepared, restored)
        assert restored.fingerprint == prepared.fingerprint
        assert restored.prepare_seconds == prepared.prepare_seconds

    def test_round_trip_identical_match_reports(self, instance):
        g1, g2, mat, _ = instance
        prepared = prepare_data_graph(g2)
        restored = PreparedDataGraph.from_payload(g2, prepared.to_payload())
        cold = match_prepared(g1, prepared, mat, 0.4)
        warm = match_prepared(g1, restored, mat, 0.4)
        assert cold.matched == warm.matched
        assert cold.quality == warm.quality
        assert cold.result.mapping == warm.result.mapping

    def test_empty_graph_round_trips(self):
        empty = DiGraph(name="empty")
        prepared = prepare_data_graph(empty)
        restored = PreparedDataGraph.from_payload(empty, prepared.to_payload())
        assert identical_masks(prepared, restored)

    def test_header_is_inspectable(self, instance):
        _, g2, _, fingerprint = instance
        payload = prepare_data_graph(g2).to_payload()
        header = PreparedDataGraph.payload_header(payload)
        assert header["fingerprint"] == fingerprint
        assert header["num_nodes"] == g2.num_nodes()
        assert header["node_reprs"] == [repr(node) for node in g2.nodes()]

    def test_wrong_graph_rejected(self, instance):
        _, g2, _, _ = instance
        payload = prepare_data_graph(g2).to_payload()
        other = DiGraph.from_edges([("p", "q")])
        with pytest.raises(ValueError):
            PreparedDataGraph.from_payload(other, payload)

    def test_reordered_nodes_rejected(self, instance):
        _, g2, _, _ = instance
        payload = prepare_data_graph(g2).to_payload()
        reordered = DiGraph(name=g2.name)
        for node in reversed(list(g2.nodes())):
            reordered.add_node(node, label=g2.label(node), weight=g2.weight(node))
        reordered.add_edges(g2.edges())
        with pytest.raises(ValueError):
            PreparedDataGraph.from_payload(reordered, payload)

    def test_truncated_masks_rejected(self, instance):
        _, g2, _, _ = instance
        payload = prepare_data_graph(g2).to_payload()
        with pytest.raises(ValueError):
            PreparedDataGraph.from_payload(g2, payload[:-3])


# ----------------------------------------------------------------------
# Store files
# ----------------------------------------------------------------------
class TestPreparedIndexStore:
    def test_save_load_bit_identity(self, tmp_path, instance):
        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        prepared = prepare_data_graph(g2)
        path = store.save(prepared)
        assert path.is_file() and path.suffix == STORE_SUFFIX
        loaded = store.load(fingerprint, g2)
        assert loaded is not None and identical_masks(prepared, loaded)

    def test_save_is_atomic_no_leftover_tmp(self, tmp_path, instance):
        _, g2, _, _ = instance
        store = PreparedIndexStore(tmp_path)
        store.save(prepare_data_graph(g2))
        assert [p.suffix for p in tmp_path.iterdir()] == [STORE_SUFFIX]

    def test_concurrent_saves_of_one_fingerprint(self, tmp_path, instance):
        """Same-process writers must not share tmp files: every save
        succeeds and the final file stays loadable throughout."""
        import threading

        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        prepared = prepare_data_graph(g2)
        errors = []

        def write_many():
            try:
                for _ in range(20):
                    store.save(prepared)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert [p.suffix for p in tmp_path.iterdir()] == [STORE_SUFFIX]
        assert store.load(fingerprint, g2) is not None

    def test_missing_file_is_miss(self, tmp_path, instance):
        _, g2, _, fingerprint = instance
        assert PreparedIndexStore(tmp_path).load(fingerprint, g2) is None

    @pytest.mark.parametrize(
        "damage",
        [
            lambda blob: b"",
            lambda blob: b"garbage, not an index",
            lambda blob: blob[:20],  # truncated inside the envelope
            lambda blob: blob[:-10],  # truncated payload (length mismatch)
            lambda blob: b"WRONGMAG" + blob[8:],
            lambda blob: blob[:8] + (99).to_bytes(4, "little") + blob[12:],  # version
            # One flipped payload byte: checksum catches it.
            lambda blob: blob[:60] + bytes([blob[60] ^ 0xFF]) + blob[61:],
            # Valid envelope, corrupt JSON header inside the payload.
            lambda blob: None,
        ],
    )
    def test_damaged_file_is_miss_not_crash(self, tmp_path, instance, damage):
        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        path = store.save(prepare_data_graph(g2))
        blob = path.read_bytes()
        damaged = damage(blob)
        if damaged is None:
            # Re-frame a garbage payload with a *correct* checksum, so only
            # the payload parser can reject it.
            import hashlib

            payload = b"{not json" + b"\x00" * 30
            damaged = (
                blob[:8]
                + (1).to_bytes(4, "little")
                + len(payload).to_bytes(8, "little")
                + hashlib.sha256(payload).digest()
                + payload
            )
        path.write_bytes(damaged)
        assert store.load(fingerprint, g2) is None

    def test_stale_content_is_miss(self, tmp_path, instance):
        _, g2, _, _ = instance
        store = PreparedIndexStore(tmp_path)
        store.save(prepare_data_graph(g2))
        mutated = g2.copy()
        mutated.add_edge(list(mutated.nodes())[0], "definitely-new-node")
        assert graph_fingerprint(mutated) != graph_fingerprint(g2)
        assert store.load(graph_fingerprint(mutated), mutated) is None

    def test_file_keyed_by_other_fingerprint_is_miss(self, tmp_path, instance):
        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        saved = store.save(prepare_data_graph(g2))
        # An index renamed to another graph's key must not be served.
        _, other, _ = make_random_instance(12, n2=20)
        other_key = graph_fingerprint(other)
        saved.rename(store.path_for(other_key))
        assert store.load(other_key, other) is None

    def test_listing_contains_and_remove(self, tmp_path, instance):
        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        assert len(store) == 0 and fingerprint not in store
        store.save(prepare_data_graph(g2))
        assert len(store) == 1 and fingerprint in store
        (entry,) = store.entries()
        assert entry.fingerprint == fingerprint
        assert entry.num_nodes == g2.num_nodes()
        assert entry.num_edges == g2.num_edges()
        assert entry.file_bytes > 0
        assert json.dumps(entry.as_dict())  # JSON-serialisable for the CLI
        assert store.remove(fingerprint) is True
        assert store.remove(fingerprint) is False
        assert len(store) == 0

    def test_entries_skip_corrupt_files(self, tmp_path, instance):
        _, g2, _, fingerprint = instance
        store = PreparedIndexStore(tmp_path)
        path = store.save(prepare_data_graph(g2))
        path.write_bytes(b"junk")
        assert store.entries() == []
        assert fingerprint in store  # file exists, even though unreadable

    def test_clear(self, tmp_path, instance):
        _, g2, _, _ = instance
        store = PreparedIndexStore(tmp_path)
        store.save(prepare_data_graph(g2))
        assert store.clear() == 1
        assert store.clear() == 0

    def test_path_for_rejects_non_fingerprints(self, tmp_path):
        store = PreparedIndexStore(tmp_path)
        with pytest.raises(InputError):
            store.path_for("../../etc/passwd")
        with pytest.raises(InputError):
            store.path_for("deadbeef")  # too short

    def test_missing_dir_without_create(self, tmp_path):
        with pytest.raises(InputError):
            PreparedIndexStore(tmp_path / "nope", create=False)

    def test_is_fingerprint(self):
        digest = "a" * 64
        assert is_fingerprint(digest)
        assert not is_fingerprint(digest[:-1])
        assert not is_fingerprint(digest[:-1] + "G")
        assert is_fingerprint("abc123", prefix=True)
        assert not is_fingerprint("", prefix=True)
        assert not is_fingerprint("xyz", prefix=True)


# ----------------------------------------------------------------------
# Two-tier service accounting
# ----------------------------------------------------------------------
class TestTwoTierService:
    def test_cold_warm_hot_accounting(self, tmp_path, instance):
        g1, g2, mat, _ = instance
        cold = MatchingService(store_dir=str(tmp_path))
        first = cold.match(g1, g2, mat, 0.4)
        snap = cold.stats.snapshot()
        assert snap["cache_misses"] == 1
        assert snap["disk_misses"] == 1 and snap["disk_hits"] == 0
        assert snap["prepares"] == 1
        assert snap["store_seconds"] > 0.0
        assert len(cold.store) == 1  # the build was persisted

        # A separate "process": fresh service, same directory.
        warm = MatchingService(store_dir=str(tmp_path))
        second = warm.match(g1, g2, mat, 0.4)
        snap = warm.stats.snapshot()
        assert snap["cache_misses"] == 1
        assert snap["disk_hits"] == 1 and snap["disk_misses"] == 0
        assert snap["prepares"] == 0 and snap["prepare_seconds"] == 0.0
        assert snap["load_seconds"] > 0.0

        # Same service again: memory tier absorbs it, disk untouched.
        third = warm.match(g1, g2, mat, 0.4)
        snap = warm.stats.snapshot()
        assert snap["cache_hits"] == 1 and snap["disk_hits"] == 1

        assert first.result.mapping == second.result.mapping == third.result.mapping
        assert first.quality == second.quality == third.quality

    def test_corrupt_store_falls_back_to_build(self, tmp_path, instance):
        g1, g2, mat, fingerprint = instance
        MatchingService(store_dir=str(tmp_path)).match(g1, g2, mat, 0.4)
        store = PreparedIndexStore(tmp_path)
        store.path_for(fingerprint).write_bytes(b"scribble")

        service = MatchingService(store=store)
        report = service.match(g1, g2, mat, 0.4)
        assert report.quality >= 0.0
        assert service.stats.disk_misses == 1
        assert service.stats.prepares == 1
        # The rebuild re-persisted a good file.
        assert store.load(fingerprint, g2) is not None

    def test_match_many_through_disk_tier(self, tmp_path):
        rng = random.Random(5)
        data = random_digraph(50, 150, rng, name="data")
        nodes = list(data.nodes())
        patterns = [data.subgraph(rng.sample(nodes, 5), name=f"p{i}") for i in range(8)]

        plain = MatchingService().match_many(patterns, data, label_equality_matrix, 0.5)
        MatchingService(store_dir=str(tmp_path)).match_many(
            patterns, data, label_equality_matrix, 0.5
        )
        warm = MatchingService(store_dir=str(tmp_path))
        reports = warm.match_many(patterns, data, label_equality_matrix, 0.5)
        assert warm.stats.disk_hits == 1 and warm.stats.prepares == 0
        assert [r.result.mapping for r in reports] == [r.result.mapping for r in plain]

    def test_store_and_store_dir_are_exclusive(self, tmp_path):
        with pytest.raises(InputError):
            MatchingService(store=PreparedIndexStore(tmp_path), store_dir=str(tmp_path))

    def test_reset_default_service_with_store(self, tmp_path, instance):
        g1, g2, mat, _ = instance
        try:
            service = reset_default_service(store_dir=str(tmp_path))
            match(g1, g2, mat, 0.4)  # routes through the disk-backed default
            assert service.stats.disk_misses == 1
            assert len(service.store) == 1
            fresh = reset_default_service(store_dir=str(tmp_path))
            match(g1, g2, mat, 0.4)
            assert fresh.stats.disk_hits == 1
        finally:
            reset_default_service()


# ----------------------------------------------------------------------
# The index CLI
# ----------------------------------------------------------------------
class TestIndexCli:
    @pytest.fixture
    def workload_files(self, tmp_path):
        rng = random.Random(3)
        data = random_digraph(60, 180, rng, name="data")
        nodes = list(data.nodes())
        dpath = tmp_path / "data.json"
        dump_json(data, dpath)
        ppaths = []
        for i in range(3):
            path = tmp_path / f"p{i}.json"
            dump_json(data.subgraph(rng.sample(nodes, 5), name=f"p{i}"), path)
            ppaths.append(str(path))
        return str(dpath), ppaths, str(tmp_path / "idx"), graph_fingerprint(data)

    def parsed_lines(self, capsys):
        return [json.loads(line) for line in capsys.readouterr().out.splitlines()]

    def test_warm_ls_batch_rm_cycle(self, workload_files, capsys):
        dpath, ppaths, store_dir, fingerprint = workload_files

        assert main(["index", "warm", store_dir, dpath]) == 0
        (warmed,) = self.parsed_lines(capsys)
        assert warmed["action"] == "stored" and warmed["fingerprint"] == fingerprint

        # Warming again is a no-op unless forced.
        assert main(["index", "warm", store_dir, dpath]) == 0
        (rewarmed,) = self.parsed_lines(capsys)
        assert rewarmed["action"] == "exists"
        assert main(["index", "warm", store_dir, dpath, "--force"]) == 0
        (forced,) = self.parsed_lines(capsys)
        assert forced["action"] == "stored"

        assert main(["index", "ls", store_dir]) == 0
        *entries, summary = self.parsed_lines(capsys)
        assert summary == {"summary": True, "entries": 1}
        assert entries[0]["fingerprint"] == fingerprint

        # A cold batch served from the warmed store: no prepare at all.
        assert main(["batch", dpath, *ppaths, "--store-dir", store_dir]) == 0
        *_, batch_summary = self.parsed_lines(capsys)
        service = batch_summary["service"]
        assert service["disk_hits"] == 1 and service["prepares"] == 0
        assert service["load_seconds"] > 0.0

        # Remove by unambiguous prefix, then confirm the store is empty.
        assert main(["index", "rm", store_dir, fingerprint[:12]]) == 0
        (removed,) = self.parsed_lines(capsys)
        assert removed == {"removed": 1}
        assert main(["index", "ls", store_dir]) == 0
        (empty_summary,) = self.parsed_lines(capsys)
        assert empty_summary["entries"] == 0

    def test_warm_repairs_corrupt_file(self, workload_files, capsys):
        """A damaged store file must be re-prepared, not reported warm."""
        dpath, _, store_dir, fingerprint = workload_files
        assert main(["index", "warm", store_dir, dpath]) == 0
        capsys.readouterr()
        store = PreparedIndexStore(store_dir, create=False)
        store.path_for(fingerprint).write_bytes(b"bit rot")
        assert main(["index", "warm", store_dir, dpath]) == 0
        (repaired,) = self.parsed_lines(capsys)
        assert repaired["action"] == "stored"
        from repro.graph.io import load_json

        assert store.load(fingerprint, load_json(dpath)) is not None

    def test_rm_all_and_bad_args(self, workload_files, capsys):
        dpath, _, store_dir, _ = workload_files
        assert main(["index", "warm", store_dir, dpath]) == 0
        capsys.readouterr()
        assert main(["index", "rm", store_dir]) == 2  # nothing requested
        assert main(["index", "rm", store_dir, "zz"]) == 2  # not hex
        capsys.readouterr()
        assert main(["index", "rm", store_dir, "--all"]) == 0
        (removed,) = self.parsed_lines(capsys)
        assert removed == {"removed": 1}

    def test_match_with_store_dir(self, workload_files, capsys):
        dpath, ppaths, store_dir, _ = workload_files
        main(["match", ppaths[0], dpath, "--xi", "0.5", "--store-dir", store_dir])
        capsys.readouterr()
        # The first run warmed the store; a second process would now load.
        service = MatchingService(store_dir=store_dir)
        from repro.graph.io import load_json

        service.match(
            load_json(ppaths[0]),
            load_json(dpath),
            label_equality_matrix,
            0.5,
        )
        assert service.stats.disk_hits == 1
