"""Transitive closure and the bitset reachability index ``H2``.

The matching algorithms of the paper query one relation constantly:

    ``(u1, u2) ∈ E2⁺``  —  "is there a *nonempty* path from u1 to u2 in G2?"

Algorithm ``compMaxCard`` (paper Fig. 3, lines 5–7) materialises this as an
adjacency matrix ``H2`` over the transitive closure ``G2⁺``.  We provide the
same object as :class:`ReachabilityIndex`: one Python big-int bitmask per
node, built SCC-by-SCC on the condensation in reverse topological order
(the approach of Nuutila [22] cited by the paper).  Bitmask rows keep the
index at ~|V|²/8 bytes and make "prune every candidate that cannot reach u"
a single mask intersection.

``transitive_closure_graph`` additionally materialises ``G⁺`` as a
:class:`DiGraph` — used by the symmetric (path-to-path) matching variant of
Section 3.2 and by the SCC-compression optimization of Appendix B.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation
from repro.utils.errors import GraphError

__all__ = [
    "ReachabilityIndex",
    "component_member_masks",
    "decremental_reach_rows",
    "transitive_closure_graph",
]

Node = Hashable


def component_member_masks(cond: Condensation, position_of: dict[Node, int]) -> list[int]:
    """One bitmask per SCC with the position bit of every member set.

    The building block both closure computations share: the full
    :class:`ReachabilityIndex` construction OR-combines these masks over
    the whole condensation, and the incremental re-prepare
    (:mod:`repro.core.incremental`) over just the dirty components.
    """
    masks = [0] * cond.num_components()
    for cid, members in enumerate(cond.components):
        mask = 0
        for member in members:
            mask |= 1 << position_of[member]
        masks[cid] = mask
    return masks


def decremental_reach_rows(
    successors_of,
    predecessors_of,
    old_rows,
    dirty: set[int],
    seeds: set[int],
    acyclic: bool = False,
) -> tuple[dict[int, int], int]:
    """Recompute reach rows after pure edge removals, support-checked.

    ``successors_of(p)`` / ``predecessors_of(p)`` return the *new*
    graph's successor / predecessor positions of position ``p``;
    ``old_rows`` are the base index's reach rows (bit i = position i);
    ``dirty`` is the set of positions whose rows may have changed;
    ``seeds`` are the removed edges' tail positions.  The caller
    guarantees ``dirty`` is read off the old index as "everything that
    reached a seed" — removals only shrink reachability, so every SCC of
    the new graph that meets ``dirty`` lies entirely inside it, and
    every external successor's row is final.  ``acyclic`` asserts no
    dirty position lay on an old cycle (removals never create one), so
    the dirty-induced subgraph is a DAG.

    Rows are recomputed only where the removed edges' support actually
    drained: a recomputed row equal to the current one is *not* recorded
    and the change wave stops there (Italiano-style support draining
    without per-edge counters).  In the acyclic case a worklist
    propagates shrinkage from the seeds to dirty predecessors — rows
    only ever shrink toward the unique fixpoint, so the traversal is
    bounded by the actually-affected region, not the dirty estimate.
    The general case runs one Tarjan pass over the dirty-induced
    subgraph, emitting SCCs in reverse topological order and recomputing
    an SCC only when it contains a seed or reads a changed successor.
    Returns ``(changed_rows, rows_recomputed)``: every position absent
    from ``changed_rows`` provably kept its old row, so callers can
    splice old rows through by reference.
    """
    changed: dict[int, int] = {}
    recomputed = 0
    adjacency: dict[int, list[int]] = {}

    def succs(p: int) -> list[int]:
        cached = adjacency.get(p)
        if cached is None:
            cached = adjacency[p] = list(successors_of(p))
        return cached

    if acyclic:
        # Chaotic iteration from the old rows (an overapproximation):
        # recomputes shrink monotonically, and with no cycle inside the
        # dirty region the fixpoint is unique — the exact new closure.
        queue = deque(sorted(seeds))
        queued = set(queue)
        while queue:
            u = queue.popleft()
            queued.discard(u)
            mask = 0
            for t in succs(u):
                mask |= (1 << t) | changed.get(t, old_rows[t])
            recomputed += 1
            if mask != changed.get(u, old_rows[u]):
                changed[u] = mask
                for p in predecessors_of(u):
                    if p in dirty and p not in queued:
                        queue.append(p)
                        queued.add(p)
        return changed, recomputed

    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = 0
    for root in sorted(dirty):
        if root in index_of:
            continue
        work: list[tuple[int, list[int], int]] = [(root, succs(root), 0)]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, targets, next_i = work.pop()
            advanced = False
            while next_i < len(targets):
                succ = targets[next_i]
                next_i += 1
                if succ not in dirty:
                    continue  # clean successor: its SCC cannot meet dirty
                if succ not in index_of:
                    work.append((node, targets, next_i))
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, succs(succ), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                members: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                member_set = set(members)
                needs = any(m in seeds for m in members)
                if not needs:
                    needs = any(
                        t in changed
                        for m in members
                        for t in succs(m)
                        if t not in member_set
                    )
                if needs:
                    mask = 0
                    internal = len(members) > 1
                    members_bits = 0
                    for m in members:
                        members_bits |= 1 << m
                    for m in members:
                        for t in succs(m):
                            if t in member_set:
                                internal = internal or t == m
                                continue
                            mask |= (1 << t) | changed.get(t, old_rows[t])
                    if internal:
                        mask |= members_bits
                    recomputed += len(members)
                    # Mutual reachability shrinks monotonically, so the
                    # members shared one old SCC — and one old row.
                    if mask != old_rows[members[0]]:
                        for m in members:
                            changed[m] = mask
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return changed, recomputed


class ReachabilityIndex:
    """Nonempty-path reachability over a directed graph, as bitmask rows.

    ``index.has_path(u1, u2)`` is True iff ``(u1, u2) ∈ E⁺``, i.e. there is a
    path of length ≥ 1 from u1 to u2.  In particular ``has_path(u, u)`` holds
    only when u lies on a cycle (or carries a self-loop) — the exact edge
    relation of the paper's ``G⁺``.

    Nodes are assigned dense integer positions (``position_of``); ``row(u)``
    exposes the raw bitmask for algorithms that want set-at-a-time pruning.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._order: list[Node] = list(graph.nodes())
        self.position_of: dict[Node, int] = {node: i for i, node in enumerate(self._order)}
        cond = Condensation(graph)

        # Bit masks per SCC: members_mask = bits of the SCC's own nodes;
        # reach_mask = bits of everything reachable by a nonempty path from
        # any member.  Tarjan order is reverse topological, so successors of
        # a component are always processed before the component itself.
        members_mask = component_member_masks(cond, self.position_of)

        reach_mask = [0] * cond.num_components()
        for cid in cond.reverse_topological_ids():
            mask = 0
            for succ_cid in cond.successors(cid):
                mask |= members_mask[succ_cid] | reach_mask[succ_cid]
            if cond.has_internal_cycle(cid):
                # Every member reaches every member (including itself).
                mask |= members_mask[cid]
            reach_mask[cid] = mask

        self._rows: dict[Node, int] = {}
        for node in self._order:
            self._rows[node] = reach_mask[cond.component_of[node]]

    def __contains__(self, node: Node) -> bool:
        return node in self._rows

    def num_nodes(self) -> int:
        """Number of indexed nodes."""
        return len(self._order)

    def has_path(self, source: Node, target: Node) -> bool:
        """True iff a nonempty path leads from ``source`` to ``target``."""
        try:
            row = self._rows[source]
        except KeyError:
            raise GraphError(f"node {source!r} not in reachability index") from None
        try:
            bit = self.position_of[target]
        except KeyError:
            raise GraphError(f"node {target!r} not in reachability index") from None
        return bool(row >> bit & 1)

    def on_cycle(self, node: Node) -> bool:
        """True iff ``node`` can reach itself by a nonempty path."""
        return self.has_path(node, node)

    def row(self, node: Node) -> int:
        """The raw reachability bitmask of ``node`` (bit i = position i)."""
        try:
            return self._rows[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in reachability index") from None

    def mask_of(self, nodes) -> int:
        """Bitmask with the position bit of every node in ``nodes`` set."""
        mask = 0
        for node in nodes:
            mask |= 1 << self.position_of[node]
        return mask

    def reachable_set(self, node: Node) -> set[Node]:
        """The set of nodes reachable from ``node`` by a nonempty path."""
        row = self.row(node)
        return {other for other in self._order if row >> self.position_of[other] & 1}

    def closure_size(self) -> int:
        """|E⁺|: total number of (source, target) pairs with a nonempty path."""
        return sum(row.bit_count() for row in self._rows.values())


def transitive_closure_graph(graph: DiGraph) -> DiGraph:
    """Materialise ``G⁺`` as a :class:`DiGraph`.

    The result has the same nodes (labels, weights and attrs preserved) and
    an edge ``(v1, v2)`` for every nonempty path of ``graph``.  Quadratic
    output in the worst case; the matching algorithms use
    :class:`ReachabilityIndex` instead and only the optimization layer and
    the symmetric variant materialise the closure.
    """
    index = ReachabilityIndex(graph)
    closure = DiGraph(name=f"{graph.name}+" if graph.name else "")
    for node in graph.nodes():
        closure.add_node(
            node,
            label=graph.label(node),
            weight=graph.weight(node),
            **graph.attrs(node),
        )
    for node in graph.nodes():
        for target in index.reachable_set(node):
            closure.add_edge(node, target)
    return closure
