"""RL005 negatives: copies are writable; the COW overlay is exempt.

Parsed by the analyzer tests, never imported or executed.
"""

import numpy as np


def hydrate(buffer, blocks):
    # .copy() materializes off the mapping: writes touch private memory.
    matrix = np.frombuffer(buffer, dtype="<u8").reshape(-1, blocks).copy()
    matrix[0] = 1
    matrix.fill(0)
    return matrix


def read_only(buffer):
    view = np.frombuffer(buffer, dtype="<u8")
    total = int(view.sum())  # reads are always fine
    return total


class _CowMatrix:
    def copy_out(self, buffer, row):
        view = np.frombuffer(buffer, dtype="<u8")
        view[row] = 0  # the blessed overlay may touch its rows
        return view
