"""Similarity Flooding (Melnik, Garcia-Molina, Rahm — ICDE 2002).

The SF baseline of the paper's experiments.  The algorithm builds a
*pairwise connectivity graph* (PCG) over node pairs — PCG has the edge
``(v, u) → (v', u')`` whenever ``(v, v') ∈ E1`` and ``(u, u') ∈ E2`` — and
propagates an initial similarity over it to a fixpoint, on the intuition
that two nodes are similar when their neighborhoods are similar.

Propagation coefficients follow Melnik et al.: each PCG edge propagates in
both directions, and the coefficients leaving a pair through forward
(respectively backward) edges each sum to 1.  The fixpoint formula is
selectable; the default is the variant the SF paper found most effective
(σ⁰ and σⁱ both included in the propagation argument).

By default the PCG is restricted to pairs with a nonzero initial
similarity.  This is the standard practical mitigation for the PCG's
|E1|·|E2| edge blow-up — exactly the cost the paper observes when SF
"deteriorated rapidly" on larger sites — and can be disabled for an
exhaustive run on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graph.digraph import DiGraph
from repro.similarity.matrix import SimilarityMatrix
from repro.utils.errors import InputError

__all__ = ["FloodingResult", "similarity_flooding", "extract_matching"]

Node = Hashable
Pair = tuple[Node, Node]

_FORMULAS = ("basic", "a", "b", "c")


@dataclass
class FloodingResult:
    """Outcome of a similarity-flooding run."""

    #: Final propagated similarity per (v, u) pair, normalised to [0, 1].
    matrix: SimilarityMatrix
    iterations: int
    residual: float
    converged: bool
    num_pairs: int
    num_propagation_edges: int


def _build_pcg(
    graph1: DiGraph,
    graph2: DiGraph,
    initial: SimilarityMatrix,
    restrict: str,
) -> tuple[list[Pair], dict[Pair, int], list[list[tuple[int, float]]]]:
    """Construct PCG pairs and the weighted propagation in-edges per pair."""
    if restrict == "nonzero":
        pairs = [(v, u) for v, u, score in initial.pairs() if score > 0.0]
    elif restrict == "all":
        pairs = [(v, u) for v in graph1.nodes() for u in graph2.nodes()]
    else:
        raise InputError(f"unknown restrict mode {restrict!r}; use 'nonzero' or 'all'")
    index = {pair: i for i, pair in enumerate(pairs)}

    forward: list[list[int]] = [[] for _ in pairs]
    backward: list[list[int]] = [[] for _ in pairs]
    for (v, u), i in index.items():
        for v_next in graph1.successors(v):
            for u_next in graph2.successors(u):
                j = index.get((v_next, u_next))
                if j is not None:
                    forward[i].append(j)
                    backward[j].append(i)

    # In-edges with Melnik coefficients: edges leaving a pair through the
    # forward (resp. backward) relation share a unit of weight.
    in_edges: list[list[tuple[int, float]]] = [[] for _ in pairs]
    for i, targets in enumerate(forward):
        if targets:
            coefficient = 1.0 / len(targets)
            for j in targets:
                in_edges[j].append((i, coefficient))
    for i, targets in enumerate(backward):
        if targets:
            coefficient = 1.0 / len(targets)
            for j in targets:
                in_edges[j].append((i, coefficient))
    return pairs, index, in_edges


def similarity_flooding(
    graph1: DiGraph,
    graph2: DiGraph,
    initial: SimilarityMatrix,
    formula: str = "c",
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    restrict: str = "nonzero",
) -> FloodingResult:
    """Run similarity flooding from ``initial`` similarities to a fixpoint.

    Returns the final pair scores normalised so the best pair scores 1.0
    (SF's standard per-iteration normalisation is by the maximum value).
    """
    if formula not in _FORMULAS:
        raise InputError(f"unknown formula {formula!r}; pick one of {_FORMULAS}")
    pairs, index, in_edges = _build_pcg(graph1, graph2, initial, restrict)
    num_edges = sum(len(edges) for edges in in_edges)
    if not pairs:
        return FloodingResult(SimilarityMatrix(), 0, 0.0, True, 0, 0)

    sigma0 = [initial(v, u) for (v, u) in pairs]
    current = list(sigma0)
    iterations = 0
    residual = float("inf")
    converged = False

    def propagate(values: list[float]) -> list[float]:
        return [
            sum(values[source] * coefficient for source, coefficient in in_edges[target])
            for target in range(len(pairs))
        ]

    for _ in range(max_iterations):
        if formula == "basic":
            flowed = propagate(current)
            nxt = [current[i] + flowed[i] for i in range(len(pairs))]
        elif formula == "a":
            flowed = propagate(current)
            nxt = [sigma0[i] + flowed[i] for i in range(len(pairs))]
        elif formula == "b":
            mixed = [sigma0[i] + current[i] for i in range(len(pairs))]
            nxt = propagate(mixed)
        else:  # "c"
            mixed = [sigma0[i] + current[i] for i in range(len(pairs))]
            flowed = propagate(mixed)
            nxt = [mixed[i] + flowed[i] for i in range(len(pairs))]
        top = max(nxt) if nxt else 0.0
        if top > 0.0:
            nxt = [value / top for value in nxt]
        iterations += 1
        residual = sum((nxt[i] - current[i]) ** 2 for i in range(len(pairs))) ** 0.5
        current = nxt
        if residual < tolerance:
            converged = True
            break

    matrix = SimilarityMatrix()
    for i, (v, u) in enumerate(pairs):
        if current[i] > 0.0:
            matrix.set(v, u, min(1.0, current[i]))
    return FloodingResult(matrix, iterations, residual, converged, len(pairs), num_edges)


def extract_matching(
    scores: SimilarityMatrix,
    threshold: float = 0.0,
    injective: bool = True,
) -> dict[Node, Node]:
    """Greedy best-first matching extraction from a pair-score matrix.

    Pairs are taken in decreasing score order; each pattern node is matched
    at most once, and — when ``injective`` — each data node too.  This is
    the standard SF "selection" filter and turns a vertex-similarity matrix
    into a concrete mapping whose quality the harness can measure.
    Deterministic: ties break on the pair's repr.
    """
    ranked = sorted(
        scores.pairs(),
        key=lambda entry: (-entry[2], repr(entry[0]), repr(entry[1])),
    )
    mapping: dict[Node, Node] = {}
    used_targets: set[Node] = set()
    for v, u, score in ranked:
        if score < threshold:
            break
        if v in mapping:
            continue
        if injective and u in used_targets:
            continue
        mapping[v] = u
        used_targets.add(u)
    return mapping
